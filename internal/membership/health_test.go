package membership

import (
	"context"
	"fmt"
	"testing"

	"roar/internal/proto"
	"roar/internal/ring"
	"roar/internal/wire"
)

// healthCoordinator joins n real nodes and returns the coordinator plus
// its node ids.
func healthCoordinator(t *testing.T, n int, hc HealthConfig) (*Coordinator, []ring.NodeID) {
	t.Helper()
	enc := slimEncoder()
	_, addrs := startNodes(t, enc, n)
	c, err := New(Config{P: 2, Health: hc})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	ids := make([]ring.NodeID, n)
	for i, a := range addrs {
		jr, err := c.Join(context.Background(), a, 1)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = ring.NodeID(jr.ID)
	}
	return c, ids
}

// report builds a one-node health report from fe with the given deltas.
func report(fe string, seq uint64, nh ...proto.NodeHealth) proto.HealthReport {
	return proto.HealthReport{FE: fe, Seq: seq, Nodes: nh}
}

// TestHealthAggregationQuarantinesAndRecovers walks the whole
// aggregator state machine: suspicion evidence accumulates across
// frontends and report intervals, crosses the threshold, the node is
// quarantined in the published view (still present, demoted), and probe
// successes drain the score until it is re-admitted.
func TestHealthAggregationQuarantinesAndRecovers(t *testing.T) {
	c, ids := healthCoordinator(t, 4, HealthConfig{QuarantineThreshold: 3})
	bad := ids[1]
	epoch0 := c.Epoch()

	// Two frontends each report one suspicion: 2 < 3, no quarantine.
	c.ReportHealth(report("a", 1, proto.NodeHealth{ID: int(bad), Suspicions: 1}))
	resp := c.ReportHealth(report("b", 1, proto.NodeHealth{ID: int(bad), Suspicions: 1}))
	if len(resp.Quarantined) != 0 {
		t.Fatalf("quarantined below threshold: %v", resp.Quarantined)
	}
	if got := c.HealthScore(bad); got != 2 {
		t.Fatalf("score = %v, want 2", got)
	}

	// A third frontend's suspicion crosses the threshold.
	resp = c.ReportHealth(report("c", 1, proto.NodeHealth{ID: int(bad), Suspicions: 1}))
	if len(resp.Quarantined) != 1 || resp.Quarantined[0] != int(bad) {
		t.Fatalf("Quarantined = %v, want [%d]", resp.Quarantined, bad)
	}
	if resp.Epoch == epoch0 {
		t.Fatal("quarantine must bump the view epoch")
	}
	// The view keeps the node — demoted, not dropped.
	v := c.View()
	var found, flagged bool
	for _, ni := range v.Nodes {
		if ni.ID == int(bad) {
			found, flagged = true, ni.Quarantined
		} else if ni.Quarantined {
			t.Fatalf("healthy node %d flagged quarantined", ni.ID)
		}
	}
	if !found || !flagged {
		t.Fatalf("quarantined node in view: found=%v flagged=%v", found, flagged)
	}

	// Recovery evidence: successful probes drain the score to the
	// recover threshold (0), which un-quarantines and republishes.
	epochQ := c.Epoch()
	for i := 0; i < 20 && len(c.Quarantined()) > 0; i++ {
		c.ReportHealth(report("a", uint64(2+i), proto.NodeHealth{ID: int(bad), ProbeOKs: 2}))
	}
	if got := c.Quarantined(); len(got) != 0 {
		t.Fatalf("probe evidence never recovered the node: %v (score %v)", got, c.HealthScore(bad))
	}
	if c.Epoch() == epochQ {
		t.Fatal("recovery must bump the view epoch")
	}
	for _, ni := range c.View().Nodes {
		if ni.Quarantined {
			t.Fatalf("recovered view still flags node %d", ni.ID)
		}
	}
}

// TestHealthContactsOutweighStaleSuspicion: a node with real completions
// sheds old evidence fast, but goodwill is capped — contacts cannot
// bank unbounded credit against future failures.
func TestHealthContactsOutweighStaleSuspicion(t *testing.T) {
	c, ids := healthCoordinator(t, 3, HealthConfig{QuarantineThreshold: 3})
	id := int(ids[0])
	c.ReportHealth(report("a", 1, proto.NodeHealth{ID: id, Suspicions: 2}))
	c.ReportHealth(report("a", 2, proto.NodeHealth{ID: id, Contacts: 500}))
	if got := c.HealthScore(ids[0]); got != 0 {
		t.Fatalf("score after healthy interval = %v, want 0", got)
	}
	// The capped goodwill means 2 fresh suspicions in later intervals
	// still count in full.
	c.ReportHealth(report("a", 3, proto.NodeHealth{ID: id, Suspicions: 2}))
	if got := c.HealthScore(ids[0]); got != 2 {
		t.Fatalf("fresh suspicions discounted by banked goodwill: score %v, want 2", got)
	}
}

// TestHealthMaxQuarantineFraction: correlated slowness must not let the
// aggregator quarantine the whole cluster out of scheduling.
func TestHealthMaxQuarantineFraction(t *testing.T) {
	c, ids := healthCoordinator(t, 4, HealthConfig{QuarantineThreshold: 1, MaxQuarantineFraction: 0.5})
	for i, id := range ids {
		c.ReportHealth(report("a", uint64(i+1), proto.NodeHealth{ID: int(id), Suspicions: 5}))
	}
	if got := len(c.Quarantined()); got != 2 {
		t.Fatalf("quarantined %d of 4 nodes; the 0.5 fraction cap must hold at 2", got)
	}
}

// TestHealthDuplicateReportIgnored: a re-delivered report (same FE, same
// seq) must not double-count its deltas — but a LOWER sequence is a
// frontend restart (counters begin again at 1) and its evidence must
// keep flowing immediately.
func TestHealthDuplicateReportIgnored(t *testing.T) {
	c, ids := healthCoordinator(t, 3, HealthConfig{QuarantineThreshold: 5})
	rep := report("a", 7, proto.NodeHealth{ID: int(ids[0]), Suspicions: 1})
	c.ReportHealth(rep)
	c.ReportHealth(rep)
	if got := c.HealthScore(ids[0]); got != 1 {
		t.Fatalf("duplicate report double-counted: score %v, want 1", got)
	}
	// Restart: seq drops back to 1; the report must be folded.
	c.ReportHealth(report("a", 1, proto.NodeHealth{ID: int(ids[0]), Suspicions: 1}))
	if got := c.HealthScore(ids[0]); got != 2 {
		t.Fatalf("restarted frontend's report dropped: score %v, want 2", got)
	}
	// And the restarted incarnation's own continuity works from there.
	c.ReportHealth(report("a", 2, proto.NodeHealth{ID: int(ids[0]), Suspicions: 1}))
	if got := c.HealthScore(ids[0]); got != 3 {
		t.Fatalf("post-restart report dropped: score %v, want 3", got)
	}
}

// TestHandleFailureIsEvidenceNotRemoval pins the tentpole's semantic
// change: a hard Failed report no longer redistributes the node's range
// — it feeds the aggregator, and enough of them quarantine (never
// remove) the node.
func TestHandleFailureIsEvidenceNotRemoval(t *testing.T) {
	c, ids := healthCoordinator(t, 4, HealthConfig{QuarantineThreshold: 2})
	before := len(c.View().Nodes)
	c.HandleFailure(ids[2])
	if got := len(c.View().Nodes); got != before {
		t.Fatalf("one failure report changed the topology: %d -> %d nodes", before, got)
	}
	if len(c.Quarantined()) != 0 {
		t.Fatal("one failure report quarantined below threshold")
	}
	c.HandleFailure(ids[2])
	if got := c.Quarantined(); len(got) != 1 || got[0] != int(ids[2]) {
		t.Fatalf("repeated failure reports: Quarantined = %v, want [%d]", got, ids[2])
	}
	if got := len(c.View().Nodes); got != before {
		t.Fatalf("quarantine dropped the node from the view: %d -> %d", before, got)
	}
	// Decommission remains the explicit removal path.
	if err := c.Decommission(context.Background(), ids[2]); err != nil {
		t.Fatal(err)
	}
	if got := len(c.View().Nodes); got != before-1 {
		t.Fatalf("Decommission kept the node: %d nodes", got)
	}
	if len(c.Quarantined()) != 0 {
		t.Fatal("Decommission must clear quarantine state")
	}
}

// TestMixedVersionJSONFrontendInterop: an old frontend — JSON framing
// only, speaking the legacy member.report protocol — must keep working
// against a new coordinator, its Failed hints feeding the health loop.
// And a new binary-speaking frontend pushing member.health must coexist
// on the same server.
func TestMixedVersionJSONFrontendInterop(t *testing.T) {
	c, ids := healthCoordinator(t, 4, HealthConfig{QuarantineThreshold: 2})
	// The same dispatcher wiring cmd/roar-member registers.
	d := wire.NewDispatcher()
	d.Register(proto.MMemberReport, func(_ context.Context, _ string, body wire.Body) (interface{}, error) {
		var req proto.ReportReq
		if err := body.Decode(&req); err != nil {
			return nil, err
		}
		speeds := map[ring.NodeID]float64{}
		for id, s := range req.Speeds {
			speeds[ring.NodeID(id)] = s
		}
		c.ReportSpeeds(speeds)
		for _, id := range req.Failed {
			c.HandleFailure(ring.NodeID(id))
		}
		return struct{}{}, nil
	})
	d.Register(proto.MMemberHealth, func(_ context.Context, _ string, body wire.Body) (interface{}, error) {
		var req proto.HealthReport
		if err := body.Decode(&req); err != nil {
			return nil, err
		}
		return c.ReportHealth(req), nil
	})
	srv, err := wire.Serve("127.0.0.1:0", d.Handle)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Old frontend: JSON-pinned connection, legacy report body.
	old := wire.NewClientWithConfig(srv.Addr(), wire.ClientConfig{DisableBinary: true})
	defer old.Close()
	for i := 0; i < 2; i++ {
		req := proto.ReportReq{Speeds: map[int]float64{int(ids[0]): 2.5}, Failed: []int{int(ids[1])}}
		if err := old.Call(context.Background(), proto.MMemberReport, req, nil); err != nil {
			t.Fatalf("legacy report %d: %v", i, err)
		}
	}
	if got := c.Quarantined(); len(got) != 1 || got[0] != int(ids[1]) {
		t.Fatalf("legacy Failed hints never quarantined: %v", got)
	}

	// New frontend: negotiated binary connection, health report body.
	nw := wire.NewClient(srv.Addr())
	defer nw.Close()
	var hr proto.HealthResp
	rep := report("new-fe", 1, proto.NodeHealth{ID: int(ids[1]), ProbeOKs: 100})
	if err := nw.Call(context.Background(), proto.MMemberHealth, rep, &hr); err != nil {
		t.Fatalf("binary health report: %v", err)
	}
	if len(hr.Quarantined) != 0 {
		t.Fatalf("probe recovery evidence ignored: %v", hr.Quarantined)
	}
	if st := nw.Stats(); st.Binary == 0 {
		t.Fatal("new client never negotiated the binary framing")
	}
}

// TestHealthTenantAggregation: per-tenant deltas from multiple
// frontends accumulate into fleet totals, and a tenant-id flood folds
// into the overflow bucket instead of growing without bound.
func TestHealthTenantAggregation(t *testing.T) {
	c, _ := healthCoordinator(t, 1, HealthConfig{})
	repA := report("a", 1)
	repA.Tenants = []proto.TenantLoad{{Tenant: "acme", Admitted: 5, Shed: 1, CacheHits: 3}}
	c.ReportHealth(repA)
	repB := report("b", 1)
	repB.Tenants = []proto.TenantLoad{
		{Tenant: "acme", Admitted: 2, CacheMisses: 4},
		{Tenant: "beta", Shed: 7},
	}
	c.ReportHealth(repB)

	totals := c.TenantTotals()
	if len(totals) != 2 {
		t.Fatalf("got %d tenants, want 2: %v", len(totals), totals)
	}
	if acme := totals[0]; acme.Tenant != "acme" || acme.Admitted != 7 || acme.Shed != 1 ||
		acme.CacheHits != 3 || acme.CacheMisses != 4 {
		t.Errorf("acme totals wrong: %+v", acme)
	}
	if beta := totals[1]; beta.Tenant != "beta" || beta.Shed != 7 {
		t.Errorf("beta totals wrong: %+v", beta)
	}

	// A duplicate report (same FE, same seq) must not double-count.
	c.ReportHealth(repB)
	if got := c.TenantTotals()[1]; got.Shed != 7 {
		t.Errorf("duplicate report double-counted tenant deltas: %+v", got)
	}

	// Flood: past the cap, new ids fold into the overflow bucket.
	h := c.health
	h.mu.Lock()
	for i := len(h.tenants); i < maxTenantTotals; i++ {
		name := fmt.Sprintf("f%05d", i)
		h.tenants[name] = proto.TenantLoad{Tenant: name}
	}
	h.mu.Unlock()
	repC := report("c", 1)
	repC.Tenants = []proto.TenantLoad{{Tenant: "brand-new", Admitted: 9}}
	c.ReportHealth(repC)
	h.mu.Lock()
	_, grewPast := h.tenants["brand-new"]
	over := h.tenants[tenantTotalsOverflow]
	n := len(h.tenants)
	h.mu.Unlock()
	if grewPast || n > maxTenantTotals+1 {
		t.Errorf("tenant flood grew the table: n=%d newTenantTracked=%v", n, grewPast)
	}
	if over.Admitted != 9 {
		t.Errorf("overflow bucket did not absorb the flood delta: %+v", over)
	}
}
