package membership

import (
	"context"
	"sort"
	"testing"
	"time"

	"roar/internal/node"
	"roar/internal/pps"
	"roar/internal/ring"
)

func slimEncoder() *pps.Encoder {
	return pps.NewEncoder(pps.TestKey(1), pps.EncoderConfig{
		MaxKeywords: 2, MaxPathDir: 1,
		SizePoints: pps.LinearPoints(0, 100, 2), DateDays: 365, DateSpan: 2,
		RankBuckets: []int{1},
	})
}

func startNodes(t *testing.T, enc *pps.Encoder, n int) ([]*node.Node, []string) {
	t.Helper()
	var nodes []*node.Node
	var addrs []string
	for i := 0; i < n; i++ {
		nd, err := node.New(node.Config{Params: enc.ServerParams()})
		if err != nil {
			t.Fatal(err)
		}
		srv, err := nd.Serve("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		nodes = append(nodes, nd)
		addrs = append(addrs, srv.Addr())
	}
	return nodes, addrs
}

func corpus(t *testing.T, enc *pps.Encoder, n int) []pps.Encoded {
	t.Helper()
	recs := make([]pps.Encoded, n)
	for i := range recs {
		r, err := enc.EncryptDocument(pps.Document{
			ID: uint64(i)*(^uint64(0)/uint64(n)) + 7, Path: "/x", Size: 5,
			Modified: time.Unix(1.2e9, 0), Keywords: []string{"w"},
		})
		if err != nil {
			t.Fatal(err)
		}
		recs[i] = r
	}
	return recs
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("missing P should be rejected")
	}
}

func TestJoinSplitsHottestRange(t *testing.T) {
	c, err := New(Config{P: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	enc := slimEncoder()
	_, addrs := startNodes(t, enc, 3)
	// First node owns everything.
	j0, err := c.Join(context.Background(), addrs[0], 1)
	if err != nil {
		t.Fatal(err)
	}
	if j0.ID != 0 {
		t.Errorf("first id = %d", j0.ID)
	}
	// Second node splits the full ring: starts at 0.5.
	j1, err := c.Join(context.Background(), addrs[1], 1)
	if err != nil {
		t.Fatal(err)
	}
	if j1.Start != 0.5 {
		t.Errorf("second node starts at %v, want 0.5 (hotspot midpoint)", j1.Start)
	}
	// A faster third node: the hottest spot is a range per unit speed;
	// both current nodes tie, the split lands mid-range of one of them.
	j2, err := c.Join(context.Background(), addrs[2], 2)
	if err != nil {
		t.Fatal(err)
	}
	if j2.Start != 0.25 && j2.Start != 0.75 {
		t.Errorf("third node starts at %v, want a range midpoint", j2.Start)
	}
	v := c.View()
	if len(v.Nodes) != 3 || v.P != 2 {
		t.Errorf("view = %+v", v)
	}
}

func TestLoadCorpusDistributesStoredSets(t *testing.T) {
	c, err := New(Config{P: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	enc := slimEncoder()
	nodes, addrs := startNodes(t, enc, 4)
	for _, a := range addrs {
		if _, err := c.Join(context.Background(), a, 1); err != nil {
			t.Fatal(err)
		}
	}
	recs := corpus(t, enc, 200)
	if err := c.LoadCorpus(context.Background(), recs); err != nil {
		t.Fatal(err)
	}
	// p=2 on 4 nodes: each node stores its range (1/4) + 1/p (1/2) =
	// 3/4 of objects.
	for i, nd := range nodes {
		got := nd.Store().Len()
		if got < 120 || got > 180 {
			t.Errorf("node %d stores %d records, want ~150", i, got)
		}
	}
	if c.ObjectsPushed() == 0 {
		t.Error("transfer accounting should be positive")
	}
}

func TestChangePAccounting(t *testing.T) {
	c, err := New(Config{P: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	enc := slimEncoder()
	nodes, addrs := startNodes(t, enc, 4)
	for _, a := range addrs {
		if _, err := c.Join(context.Background(), a, 1); err != nil {
			t.Fatal(err)
		}
	}
	recs := corpus(t, enc, 400)
	if err := c.LoadCorpus(context.Background(), recs); err != nil {
		t.Fatal(err)
	}
	startLen := nodes[0].Store().Len()
	// p 4 -> 2: replicas grow; data must be pushed, nodes grow.
	before := c.ObjectsPushed()
	if err := c.ChangeP(context.Background(), 2); err != nil {
		t.Fatal(err)
	}
	if c.ObjectsPushed() == before {
		t.Error("decreasing p must transfer data")
	}
	if c.P() != 2 {
		t.Errorf("P = %d, want 2", c.P())
	}
	if nodes[0].Store().Len() <= startLen {
		t.Error("stores should grow when replicas are added")
	}
	// p 2 -> 4: free, nodes shrink back.
	before = c.ObjectsPushed()
	if err := c.ChangeP(context.Background(), 4); err != nil {
		t.Fatal(err)
	}
	if c.ObjectsPushed() != before {
		t.Error("increasing p must transfer nothing")
	}
	if got := nodes[0].Store().Len(); got > startLen+5 {
		t.Errorf("store should shrink back to ~%d, has %d", startLen, got)
	}
	if err := c.ChangeP(context.Background(), 0); err == nil {
		t.Error("p=0 rejected")
	}
	if err := c.ChangeP(context.Background(), 4); err != nil {
		t.Error("no-op change should succeed")
	}
}

func TestLeaveReloadsPredecessor(t *testing.T) {
	c, err := New(Config{P: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	enc := slimEncoder()
	_, addrs := startNodes(t, enc, 3)
	var ids []ring.NodeID
	for _, a := range addrs {
		j, err := c.Join(context.Background(), a, 1)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, ring.NodeID(j.ID))
	}
	if err := c.LoadCorpus(context.Background(), corpus(t, enc, 100)); err != nil {
		t.Fatal(err)
	}
	if err := c.Leave(context.Background(), ids[1]); err != nil {
		t.Fatal(err)
	}
	v := c.View()
	if len(v.Nodes) != 2 {
		t.Errorf("view has %d nodes after leave", len(v.Nodes))
	}
	if err := c.Leave(context.Background(), ids[1]); err == nil {
		t.Error("double leave rejected")
	}
}

func TestReportSpeeds(t *testing.T) {
	c, err := New(Config{P: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	enc := slimEncoder()
	_, addrs := startNodes(t, enc, 1)
	j, err := c.Join(context.Background(), addrs[0], 1)
	if err != nil {
		t.Fatal(err)
	}
	c.ReportSpeeds(map[ring.NodeID]float64{ring.NodeID(j.ID): 42, 999: 5})
	c.mu.Lock()
	got := c.speeds[ring.NodeID(j.ID)]
	_, unknown := c.speeds[999]
	c.mu.Unlock()
	if got != 42 {
		t.Errorf("reported speed not applied: %v", got)
	}
	if unknown {
		t.Error("speeds for unknown nodes must be ignored")
	}
}

func TestJoinRackPlacesAdjacent(t *testing.T) {
	c, err := New(Config{P: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	enc := slimEncoder()
	_, addrs := startNodes(t, enc, 6)
	// Two racks, three nodes each, interleaved joins.
	racks := []string{"rackA", "rackB", "rackA", "rackB", "rackA", "rackB"}
	var ids []ring.NodeID
	for i, a := range addrs {
		j, err := c.JoinRack(context.Background(), a, 1, racks[i])
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, ring.NodeID(j.ID))
	}
	for i, id := range ids {
		if got := c.RackOf(id); got != racks[i] {
			t.Errorf("node %d rack = %q, want %q", id, got, racks[i])
		}
	}
	// Same-rack nodes must be consecutive on the ring: walking the view
	// in start order, rack changes should be minimal (2 boundaries for 2
	// contiguous groups).
	v := c.View()
	type nr struct {
		start float64
		rack  string
	}
	var order []nr
	for _, ni := range v.Nodes {
		order = append(order, nr{ni.Start, c.RackOf(ring.NodeID(ni.ID))})
	}
	sort.Slice(order, func(a, b int) bool { return order[a].start < order[b].start })
	changes := 0
	for i := range order {
		if order[i].rack != order[(i+1)%len(order)].rack {
			changes++
		}
	}
	if changes > 2 {
		t.Errorf("racks fragmented: %d rack boundaries on the ring, want 2 (§4.9.2)", changes)
	}
	// Unlabelled join falls back to the hotspot path.
	_, fallbackAddrs := startNodes(t, enc, 1)
	if _, err := c.JoinRack(context.Background(), fallbackAddrs[0], 1, ""); err != nil {
		t.Fatal(err)
	}
}

func TestViewEpochAdvances(t *testing.T) {
	c, err := New(Config{P: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	enc := slimEncoder()
	_, addrs := startNodes(t, enc, 2)
	e0 := c.View().Epoch
	if _, err := c.Join(context.Background(), addrs[0], 1); err != nil {
		t.Fatal(err)
	}
	if c.View().Epoch <= e0 {
		t.Error("join must advance the epoch")
	}
}
