// Insert idempotency/LWW property test: the ingest pipeline's
// at-least-once delivery relies on exactly this contract — Insert
// dedups by record ID (a re-delivered record never changes Len) and the
// LAST write for an ID wins (a newer version of a document replaces the
// older filter). The property is pinned against a model map under a
// randomized mix of single inserts, batch inserts, batches with
// internal duplicates, and whole-batch re-deliveries.
package store

import (
	"bytes"
	"math/rand"
	"testing"

	"roar/internal/pps"
)

// versionedRec builds a record for id whose filter bytes identify the
// write's version, so LWW violations are observable.
func versionedRec(id uint64, version byte) pps.Encoded {
	r := pps.Encoded{ID: id}
	r.Nonce = []byte{version}
	r.Filter = bytes.Repeat([]byte{version}, 8)
	return r
}

func checkModel(t *testing.T, s *Store, model map[uint64]byte, when string) {
	t.Helper()
	if s.Len() != len(model) {
		t.Fatalf("%s: Len = %d, model has %d ids", when, s.Len(), len(model))
	}
	for id, version := range model {
		got, ok := s.Get(id)
		if !ok {
			t.Fatalf("%s: id %d missing", when, id)
		}
		if len(got.Filter) == 0 || got.Filter[0] != version {
			t.Fatalf("%s: id %d holds version %d, model says %d (last write must win)",
				when, id, got.Filter[0], version)
		}
	}
}

func TestInsertIdempotentLastWriteWins(t *testing.T) {
	const ids, ops = 64, 400
	rng := rand.New(rand.NewSource(31))
	s := New()
	model := map[uint64]byte{}
	version := byte(0)
	nextVersion := func() byte { version++; return version % 250 }

	for op := 0; op < ops; op++ {
		switch rng.Intn(4) {
		case 0: // single insert (new or overwrite)
			id := uint64(rng.Intn(ids)+1) << 32
			v := nextVersion()
			s.Insert(versionedRec(id, v))
			model[id] = v
		case 1: // batch insert, distinct ids
			var batch []pps.Encoded
			for i, n := 0, rng.Intn(10)+1; i < n; i++ {
				id := uint64(rng.Intn(ids)+1) << 32
				v := nextVersion()
				batch = append(batch, versionedRec(id, v))
				model[id] = v
			}
			s.Insert(batch...)
		case 2: // batch with internal duplicates: the LAST occurrence wins
			id := uint64(rng.Intn(ids)+1) << 32
			v1, v2 := nextVersion(), nextVersion()
			s.Insert(versionedRec(id, v1), versionedRec(id, v2))
			model[id] = v2
		case 3: // at-least-once re-delivery: replay current contents verbatim
			var batch []pps.Encoded
			for id, v := range model {
				batch = append(batch, versionedRec(id, v))
			}
			before := s.Len()
			s.Insert(batch...)
			if s.Len() != before {
				t.Fatalf("op %d: duplicate delivery changed Len %d→%d", op, before, s.Len())
			}
		}
		checkModel(t, s, model, "after op")
	}
}

// TestInsertDuplicateBatchAcrossPaths re-delivers through both insert
// code paths (the sorted-merge bulk path and the one-at-a-time path are
// chosen by batch size) and requires identical results.
func TestInsertDuplicateBatchAcrossPaths(t *testing.T) {
	big := make([]pps.Encoded, 100)
	for i := range big {
		big[i] = versionedRec(uint64(i+1)<<24, 1)
	}
	bulk, single := New(), New()
	bulk.Insert(big...) // bulk merge path
	for _, r := range big {
		single.Insert(r) // per-record path
	}
	// Re-deliver the whole corpus on both, twice.
	for i := 0; i < 2; i++ {
		bulk.Insert(big...)
		for _, r := range big {
			single.Insert(r)
		}
	}
	if bulk.Len() != len(big) || single.Len() != len(big) {
		t.Fatalf("duplicate deliveries changed Len: bulk=%d single=%d want %d",
			bulk.Len(), single.Len(), len(big))
	}
	for _, r := range big {
		b, _ := bulk.Get(r.ID)
		s, _ := single.Get(r.ID)
		if !bytes.Equal(b.Filter, s.Filter) {
			t.Fatalf("id %d diverges between insert paths", r.ID)
		}
	}
}
