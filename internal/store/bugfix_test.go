package store

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"roar/internal/pps"
	"roar/internal/ring"
)

// tailClear reports whether every slot of the backing array past
// len(s.recs) (up to oldLen, the length before the shrink) has been
// zeroed. A non-nil Filter there means a dropped record's blob is still
// pinned by the backing array.
func tailClear(t *testing.T, s *Store, oldLen int) {
	t.Helper()
	tail := s.recs[len(s.recs):oldLen]
	for i, r := range tail {
		if r.ID != 0 || r.Filter != nil || r.Nonce != nil {
			t.Fatalf("backing-array slot %d past len still holds record %d (blob pinned)", len(s.recs)+i, r.ID)
		}
	}
}

// TestDeleteClearsTail: both Delete paths must zero the slots they free
// so removed records' encrypted blobs become garbage-collectable.
func TestDeleteClearsTail(t *testing.T) {
	recs, _ := testRecords(t, 40)
	s := New()
	s.Insert(recs...)
	oldLen := len(s.recs)

	// Single-id fast path.
	s.Delete(recs[5].ID)
	tailClear(t, s, oldLen)

	// Batch path, including absent and duplicate ids.
	s.Delete(recs[10].ID, recs[11].ID, recs[10].ID, ^uint64(0), recs[30].ID)
	tailClear(t, s, oldLen)
	if want := oldLen - 4; s.Len() != want {
		t.Fatalf("Len = %d, want %d", s.Len(), want)
	}
}

// TestDeleteBatchMatchesPerRecord: the one-pass batch compaction must
// agree with per-id deletion for random id sets (present, absent, and
// duplicated ids alike).
func TestDeleteBatchMatchesPerRecord(t *testing.T) {
	recs, _ := testRecords(t, 200)
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		one, batch := New(), New()
		one.Insert(recs...)
		batch.Insert(recs...)
		var ids []uint64
		for i := 0; i < 30; i++ {
			switch rng.Intn(3) {
			case 0: // present
				ids = append(ids, recs[rng.Intn(len(recs))].ID)
			case 1: // likely absent
				ids = append(ids, rng.Uint64())
			default: // duplicate of an earlier pick
				if len(ids) > 0 {
					ids = append(ids, ids[rng.Intn(len(ids))])
				}
			}
		}
		for _, id := range ids {
			one.Delete(id)
		}
		batch.Delete(ids...)
		if one.Len() != batch.Len() {
			t.Fatalf("trial %d: per-record Len %d != batch Len %d", trial, one.Len(), batch.Len())
		}
		a := one.InArc(0.5, 0.5)
		b := batch.InArc(0.5, 0.5)
		for i := range a {
			if a[i].ID != b[i].ID {
				t.Fatalf("trial %d: record %d diverges: %d vs %d", trial, i, a[i].ID, b[i].ID)
			}
		}
	}
}

// TestRetainStoredClearsTail: the §4.5 replica drop must zero the
// compaction tail — a node that just shrank its stored set should not
// keep every dropped replica's blob reachable.
func TestRetainStoredClearsTail(t *testing.T) {
	recs, _ := testRecords(t, 100)
	s := New()
	s.Insert(recs...)
	oldLen := len(s.recs)
	dropped := s.RetainStored(ring.NewArc(0.5, 0.1), 5)
	if dropped == 0 {
		t.Fatal("test needs a retain that actually drops records")
	}
	tailClear(t, s, oldLen)
}

// TestArcPartitionExactlyOnce is the PointOf/IDOf boundary property the
// frontend's correctness rests on: when the ring is partitioned into
// arcs whose endpoints all round through the same IDOf, every stored id
// must land in exactly one arc — no double-counting at a shared
// boundary, no id falling into the float-rounding gap between adjacent
// sub-queries. Ids are placed adversarially at IDOf(boundary)-1 /
// exact / +1 in addition to random ones.
func TestArcPartitionExactlyOnce(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 100; trial++ {
		k := 2 + rng.Intn(6) // partitions
		bounds := make([]ring.Point, 0, k)
		seen := map[ring.Point]bool{}
		for len(bounds) < k {
			var p ring.Point
			switch rng.Intn(4) {
			case 0: // a point that is itself a rounded id position
				p = PointOf(rng.Uint64())
			case 1: // near the wrap
				p = ring.Norm(rng.Float64() * 1e-9)
			default:
				p = ring.Point(rng.Float64())
			}
			if !seen[p] {
				seen[p] = true
				bounds = append(bounds, p)
			}
		}
		sort.Slice(bounds, func(a, b int) bool { return bounds[a] < bounds[b] })

		s := New()
		want := map[uint64]bool{}
		add := func(id uint64) {
			if !want[id] {
				want[id] = true
				s.Insert(pps.Encoded{ID: id})
			}
		}
		add(0)
		add(math.MaxUint64)
		for _, b := range bounds {
			id := IDOf(b)
			add(id)
			if id > 0 {
				add(id - 1)
			}
			if id < math.MaxUint64 {
				add(id + 1)
			}
		}
		for i := 0; i < 50; i++ {
			add(rng.Uint64())
		}

		count := map[uint64]int{}
		for i := range bounds {
			lo := bounds[i]
			hi := bounds[(i+1)%len(bounds)]
			for _, r := range s.InArc(lo, hi) {
				count[r.ID]++
			}
		}
		for id := range want {
			if count[id] != 1 {
				t.Fatalf("trial %d (bounds %v): id %d (point %v) assigned to %d partitions, want exactly 1",
					trial, bounds, id, PointOf(id), count[id])
			}
		}
	}
}

// BenchmarkDeleteBatch contrasts the one-pass compaction against what
// per-id deletion costs at repartition scale.
func BenchmarkDeleteBatch(b *testing.B) {
	recs, _ := testRecords(b, 5000)
	ids := make([]uint64, 0, len(recs)/2)
	for i := 0; i < len(recs); i += 2 {
		ids = append(ids, recs[i].ID)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s := New()
		s.Insert(recs...)
		b.StartTimer()
		s.Delete(ids...)
	}
}
