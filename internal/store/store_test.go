package store

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"roar/internal/pps"
	"roar/internal/ring"
)

func testRecords(t testing.TB, n int) ([]pps.Encoded, *pps.Encoder) {
	t.Helper()
	// A slim encoding keeps test corpora cheap to build: encryption cost
	// itself is covered by the pps package tests.
	enc := pps.NewEncoder(pps.TestKey(1), pps.EncoderConfig{
		MaxKeywords: 4,
		MaxPathDir:  4,
		SizePoints:  pps.LinearPoints(0, 1000, 8),
		DateDays:    365,
		DateSpan:    10,
		RankBuckets: []int{1},
	})
	rng := rand.New(rand.NewSource(42))
	recs := make([]pps.Encoded, n)
	for i := range recs {
		kw := "even"
		if i%2 == 1 {
			kw = "odd"
		}
		doc := pps.Document{
			ID:       rng.Uint64(),
			Path:     "/data/f",
			Size:     100,
			Modified: time.Unix(1.2e9, 0),
			Keywords: []string{kw},
		}
		r, err := enc.EncryptDocument(doc)
		if err != nil {
			t.Fatal(err)
		}
		recs[i] = r
	}
	return recs, enc
}

func TestPointIDRoundTrip(t *testing.T) {
	for _, id := range []uint64{0, 1, 1 << 32, 1 << 63, math.MaxUint64} {
		p := PointOf(id)
		if p < 0 || p >= 1 {
			t.Fatalf("PointOf(%d) = %v out of [0,1)", id, p)
		}
	}
	// Monotonic: greater ids map to greater-or-equal points.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		a, b := rng.Uint64(), rng.Uint64()
		if a > b {
			a, b = b, a
		}
		if PointOf(a) > PointOf(b) {
			t.Fatalf("PointOf not monotone at %d, %d", a, b)
		}
	}
	if IDOf(0) != 0 {
		t.Error("IDOf(0) should be 0")
	}
}

func TestInsertSortedUnique(t *testing.T) {
	s := New()
	recs, _ := testRecords(t, 100)
	s.Insert(recs...)
	if s.Len() != 100 {
		t.Fatalf("Len = %d", s.Len())
	}
	// Re-insert is idempotent (replace).
	s.Insert(recs[:50]...)
	if s.Len() != 100 {
		t.Fatalf("re-insert changed Len to %d", s.Len())
	}
	// Sorted invariant via InArc over the full circle.
	all := s.InArc(0.5, 0.5-1e-12)
	prev := uint64(0)
	for i, r := range all {
		if i > 0 && r.ID <= prev && PointOf(r.ID) > 0 {
			// wrap point resets ordering once; tolerate exactly one reset
			break
		}
		prev = r.ID
	}
}

func TestDeleteAndGet(t *testing.T) {
	s := New()
	recs, _ := testRecords(t, 20)
	s.Insert(recs...)
	if _, ok := s.Get(recs[3].ID); !ok {
		t.Fatal("Get should find inserted record")
	}
	s.Delete(recs[3].ID, recs[7].ID)
	if s.Len() != 18 {
		t.Fatalf("Len after delete = %d", s.Len())
	}
	if _, ok := s.Get(recs[3].ID); ok {
		t.Fatal("deleted record still present")
	}
	s.Delete(recs[3].ID) // absent: no-op
	if s.Len() != 18 {
		t.Fatal("deleting absent id changed Len")
	}
}

func TestInArcWrap(t *testing.T) {
	s := New()
	// Craft ids at known points: 0.1, 0.5, 0.9.
	for _, f := range []float64{0.1, 0.5, 0.9} {
		s.Insert(pps.Encoded{ID: IDOf(ring.Point(f))})
	}
	got := s.InArc(0.8, 0.2) // wrapping arc (0.8, 0.2]
	if len(got) != 2 {
		t.Fatalf("wrap arc matched %d records, want 2 (0.9 and 0.1)", len(got))
	}
	if n := s.CountArc(0.8, 0.2); n != 2 {
		t.Fatalf("CountArc = %d", n)
	}
	if n := s.CountArc(0.2, 0.8); n != 1 {
		t.Fatalf("CountArc(0.2,0.8) = %d, want 1 (0.5)", n)
	}
	// lo == hi is the full ring by the MatchSpan convention (pq = 1).
	if n := s.CountArc(0.3, 0.3); n != 3 {
		t.Fatalf("full-ring CountArc = %d, want 3", n)
	}
}

func TestInArcMatchesRingSemantics(t *testing.T) {
	s := New()
	recs, _ := testRecords(t, 300)
	s.Insert(recs...)
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		lo := ring.Norm(rng.Float64())
		hi := lo.Add(rng.Float64() * 0.3)
		got := map[uint64]bool{}
		for _, r := range s.InArc(lo, hi) {
			got[r.ID] = true
		}
		for _, r := range recs {
			pt := PointOf(r.ID)
			d := lo.DistCW(pt)
			want := d > 0 && d <= lo.DistCW(hi)
			if got[r.ID] != want {
				t.Fatalf("record at %v in (%v,%v]: got %v want %v", pt, lo, hi, got[r.ID], want)
			}
		}
	}
}

func TestRetainStored(t *testing.T) {
	s := New()
	for f := 0.0; f < 1; f += 0.01 {
		s.Insert(pps.Encoded{ID: IDOf(ring.Norm(f + 0.001))})
	}
	n := s.Len()
	// Node range [0.5, 0.6), p = 5: stored set (0.3, 0.6) => 30 records.
	dropped := s.RetainStored(ring.NewArc(0.5, 0.1), 5)
	if s.Len()+dropped != n {
		t.Fatalf("dropped %d + kept %d != %d", dropped, s.Len(), n)
	}
	if s.Len() < 28 || s.Len() > 32 {
		t.Errorf("kept %d records, want ~30", s.Len())
	}
	// Stored set covering the whole ring drops nothing.
	s2 := New()
	s2.Insert(pps.Encoded{ID: 42})
	if d := s2.RetainStored(ring.NewArc(0, 0.5), 2); d != 0 {
		t.Errorf("full stored set dropped %d", d)
	}
}

func TestMatchArc(t *testing.T) {
	s := New()
	recs, enc := testRecords(t, 400)
	s.Insert(recs...)
	m, err := pps.NewMatcher(enc.ServerParams())
	if err != nil {
		t.Fatal(err)
	}
	q, err := enc.EncryptQuery(pps.And, pps.Predicate{Kind: pps.Keyword, Word: "odd"})
	if err != nil {
		t.Fatal(err)
	}
	for _, threads := range []int{1, 4} {
		ids, scanned, err := s.MatchArc(context.Background(), m, q, 0.5, 0.5-1e-9,
			MatchOptions{Threads: threads, BatchSize: 32})
		if err != nil {
			t.Fatal(err)
		}
		if scanned < 399 {
			t.Errorf("threads=%d scanned %d, want ~400", threads, scanned)
		}
		if len(ids) < 190 || len(ids) > 210 {
			t.Errorf("threads=%d matched %d, want ~200", threads, len(ids))
		}
	}
}

func TestMatchArcPartial(t *testing.T) {
	s := New()
	recs, enc := testRecords(t, 400)
	s.Insert(recs...)
	m, _ := pps.NewMatcher(enc.ServerParams())
	q, _ := enc.EncryptQuery(pps.And, pps.Predicate{Kind: pps.Keyword, Word: "odd"})
	_, scanned, err := s.MatchArc(context.Background(), m, q, 0.0, 0.25, MatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if scanned < 60 || scanned > 140 {
		t.Errorf("quarter arc scanned %d, want ~100", scanned)
	}
}

func TestMatchArcCancellation(t *testing.T) {
	s := New()
	recs, enc := testRecords(t, 1000)
	s.Insert(recs...)
	m, _ := pps.NewMatcher(enc.ServerParams())
	q, _ := enc.EncryptQuery(pps.And, pps.Predicate{Kind: pps.Keyword, Word: "odd"})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := s.MatchArc(ctx, m, q, 0.5, 0.4999, MatchOptions{}); err == nil {
		t.Error("cancelled context should surface an error")
	}
}

func TestMatchArcLimiter(t *testing.T) {
	s := New()
	recs, enc := testRecords(t, 200)
	s.Insert(recs...)
	m, _ := pps.NewMatcher(enc.ServerParams())
	q, _ := enc.EncryptQuery(pps.And, pps.Predicate{Kind: pps.Keyword, Word: "odd"})
	var mu sync.Mutex
	limited := 0
	_, scanned, err := s.MatchArc(context.Background(), m, q, 0.5, 0.4999, MatchOptions{
		BatchSize: 50,
		Limiter: func(_ context.Context, n int) error {
			mu.Lock()
			limited += n
			mu.Unlock()
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if limited != scanned {
		t.Errorf("limiter saw %d records, scanned %d", limited, scanned)
	}
}

// TestMatchArcLimiterCancellation: a context cancelled mid-throttle must
// abort the scan promptly instead of sleeping out the emulated time
// (the hedged-away sub-query regression this limiter signature fixes).
func TestMatchArcLimiterCancellation(t *testing.T) {
	s := New()
	recs, enc := testRecords(t, 400)
	s.Insert(recs...)
	m, _ := pps.NewMatcher(enc.ServerParams())
	q, _ := enc.EncryptQuery(pps.And, pps.Predicate{Kind: pps.Keyword, Word: "odd"})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, _, err := s.MatchArc(ctx, m, q, 0.5, 0.4999, MatchOptions{
		BatchSize: 50,
		Limiter: func(ctx context.Context, n int) error {
			// An emulated scan so slow the full arc would take seconds.
			tm := time.NewTimer(250 * time.Millisecond)
			defer tm.Stop()
			select {
			case <-tm.C:
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		},
	})
	if err == nil {
		t.Fatal("cancelled scan should surface an error")
	}
	if el := time.Since(start); el > time.Second {
		t.Fatalf("cancelled scan took %v; limiter ignored the context", el)
	}
}

// TestMatchArcLimiterError: a limiter failure that is NOT a context
// cancellation must also surface — a partial scan must never return a
// nil error.
func TestMatchArcLimiterError(t *testing.T) {
	s := New()
	recs, enc := testRecords(t, 200)
	s.Insert(recs...)
	m, _ := pps.NewMatcher(enc.ServerParams())
	q, _ := enc.EncryptQuery(pps.And, pps.Predicate{Kind: pps.Keyword, Word: "odd"})
	boom := errors.New("limiter exploded")
	calls := 0
	_, _, err := s.MatchArc(context.Background(), m, q, 0.5, 0.4999, MatchOptions{
		BatchSize: 50,
		Limiter: func(_ context.Context, n int) error {
			calls++
			if calls > 1 {
				return boom
			}
			return nil
		},
	})
	if !errors.Is(err, boom) {
		t.Fatalf("limiter error swallowed: got %v", err)
	}
}

// TestInsertBulkMerge: the batch merge path must agree with per-record
// insertion, including replacements and intra-batch duplicates.
func TestInsertBulkMerge(t *testing.T) {
	recs, _ := testRecords(t, 300)
	one, bulk := New(), New()
	// Pre-load half, one record at a time.
	for _, r := range recs[:150] {
		one.Insert(r)
		bulk.Insert(r)
	}
	// Second wave overlaps the first (replacements) and contains an
	// intra-batch duplicate ID with different payloads: last must win.
	wave := append([]pps.Encoded(nil), recs[100:]...)
	dup := recs[120]
	dup.Filter = append([]byte(nil), dup.Filter...)
	dup.Filter[0] ^= 0xff
	wave = append(wave, dup)
	for _, r := range wave {
		one.Insert(r)
	}
	bulk.Insert(wave...)
	if one.Len() != bulk.Len() {
		t.Fatalf("bulk Len=%d, per-record Len=%d", bulk.Len(), one.Len())
	}
	a := one.InArc(0.5, 0.5)
	b := bulk.InArc(0.5, 0.5)
	for i := range a {
		if a[i].ID != b[i].ID {
			t.Fatalf("record %d: bulk id %d != per-record id %d", i, b[i].ID, a[i].ID)
		}
		if string(a[i].Filter) != string(b[i].Filter) {
			t.Fatalf("record %d (id %d): bulk filter diverges from per-record", i, a[i].ID)
		}
	}
	got, ok := bulk.Get(dup.ID)
	if !ok || string(got.Filter) != string(dup.Filter) {
		t.Fatal("intra-batch duplicate: last write did not win")
	}
}

// TestInsertBulkFresh: bulk insert into an empty store.
func TestInsertBulkFresh(t *testing.T) {
	recs, _ := testRecords(t, 64)
	s := New()
	s.Insert(recs...)
	if s.Len() != 64 {
		t.Fatalf("Len = %d", s.Len())
	}
	for _, r := range recs {
		if _, ok := s.Get(r.ID); !ok {
			t.Fatalf("record %d missing after bulk insert", r.ID)
		}
	}
}

// BenchmarkInsertBatch contrasts the merge path against per-record
// insertion for a replica-push-sized batch.
func BenchmarkInsertBatch(b *testing.B) {
	recs, _ := testRecords(b, 5000)
	b.Run("per-record", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := New()
			for _, r := range recs {
				s.Insert(r)
			}
		}
	})
	b.Run("bulk", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := New()
			s.Insert(recs...)
		}
	})
}

func TestConcurrentInsertAndMatch(t *testing.T) {
	s := New()
	recs, enc := testRecords(t, 500)
	s.Insert(recs[:250]...)
	m, _ := pps.NewMatcher(enc.ServerParams())
	q, _ := enc.EncryptQuery(pps.And, pps.Predicate{Kind: pps.Keyword, Word: "odd"})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for _, r := range recs[250:] {
			s.Insert(r)
		}
	}()
	for i := 0; i < 20; i++ {
		if _, _, err := s.MatchArc(context.Background(), m, q, 0.5, 0.4999, MatchOptions{Threads: 2}); err != nil {
			t.Fatal(err)
		}
	}
	<-done
	if s.Len() != 500 {
		t.Fatalf("Len = %d after concurrent inserts", s.Len())
	}
}

func TestSaveLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "meta.dat")
	recs, _ := testRecords(t, 150)
	if err := SaveFile(path, recs); err != nil {
		t.Fatal(err)
	}
	back, err := LoadFile(context.Background(), path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(recs) {
		t.Fatalf("loaded %d records, want %d", len(back), len(recs))
	}
	for i := range recs {
		if back[i].ID != recs[i].ID {
			t.Fatalf("record %d id mismatch", i)
		}
	}
}

func TestStoreSaveToLoadFrom(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store.dat")
	s := New()
	recs, _ := testRecords(t, 80)
	s.Insert(recs...)
	if err := s.SaveTo(path); err != nil {
		t.Fatal(err)
	}
	s2 := New()
	if err := s2.LoadFrom(context.Background(), path); err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 80 {
		t.Fatalf("loaded store has %d records", s2.Len())
	}
}

func TestMatchFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "meta.dat")
	recs, enc := testRecords(t, 400)
	if err := SaveFile(path, recs); err != nil {
		t.Fatal(err)
	}
	m, _ := pps.NewMatcher(enc.ServerParams())
	q, _ := enc.EncryptQuery(pps.And, pps.Predicate{Kind: pps.Keyword, Word: "even"})
	ids, scanned, err := MatchFile(context.Background(), path, m, q, MatchOptions{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if scanned != 400 {
		t.Errorf("scanned %d, want 400", scanned)
	}
	if len(ids) < 190 || len(ids) > 210 {
		t.Errorf("matched %d, want ~200", len(ids))
	}
	if _, _, err := MatchFile(context.Background(), filepath.Join(dir, "absent"), m, q, MatchOptions{}); err == nil {
		t.Error("missing file should error")
	}
}

func BenchmarkMatchArcInMemory(b *testing.B) {
	s := New()
	recs, enc := testRecords(b, 5000)
	s.Insert(recs...)
	m, _ := pps.NewMatcher(enc.ServerParams())
	q, _ := enc.EncryptQuery(pps.And, pps.Predicate{Kind: pps.Keyword, Word: "nonexistent"})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.MatchArc(context.Background(), m, q, 0.5, 0.4999, MatchOptions{Threads: 4}); err != nil {
			b.Fatal(err)
		}
	}
}
