// Package store implements the metadata store of §5.6: encrypted
// metadata records sorted by identifier, with partial range access (for
// sub-queries that match only a slice of the id space), wrap-aware range
// iteration, and the producer/consumer matching pipeline that decouples
// I/O from CPU-bound matching (§5.6.3).
//
// Object identifiers are uint64; their position on the ROAR ring is the
// id scaled into [0, 1). Records are kept sorted so a sub-query's id arc
// maps to at most two contiguous slices.
package store

import (
	"context"
	"math"
	"sort"
	"sync"

	"roar/internal/pps"
	"roar/internal/ring"
)

// PointOf maps an object identifier to its ring position. The largest
// identifiers round to 1.0 in float64; they are clamped just below 1 to
// stay inside [0, 1).
func PointOf(id uint64) ring.Point {
	f := float64(id) / math.Exp2(64)
	if f >= 1 {
		f = math.Nextafter(1, 0)
	}
	return ring.Point(f)
}

// IDOf maps a ring position to the first identifier at or after it.
func IDOf(p ring.Point) uint64 {
	f := float64(p) * math.Exp2(64)
	if f >= math.Exp2(64) {
		return math.MaxUint64
	}
	return uint64(f)
}

// Store holds one node's replica set. Safe for concurrent use.
type Store struct {
	mu   sync.RWMutex
	recs []pps.Encoded // sorted by ID, unique
}

// New returns an empty store.
func New() *Store { return &Store{} }

// Len returns the number of records.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.recs)
}

// Insert adds or replaces records (replica pushes are idempotent).
// Single-record inserts take the binary-search + shift fast path;
// batches are sorted and merged in one backward pass, so a replica push
// or repartition transfer of k records into n stored ones costs
// O(k log k + n) instead of the O(k·n) memmove of per-record insertion.
func (s *Store) Insert(recs ...pps.Encoded) {
	if len(recs) == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(recs) == 1 {
		s.insertOneLocked(recs[0])
		return
	}
	s.mergeLocked(recs)
}

func (s *Store) insertOneLocked(r pps.Encoded) {
	i := sort.Search(len(s.recs), func(i int) bool { return s.recs[i].ID >= r.ID })
	if i < len(s.recs) && s.recs[i].ID == r.ID {
		s.recs[i] = r
		return
	}
	s.recs = append(s.recs, pps.Encoded{})
	copy(s.recs[i+1:], s.recs[i:])
	s.recs[i] = r
}

// mergeLocked bulk-inserts a batch: sort a copy by ID (later duplicates
// win, preserving per-record insertion semantics), then merge with the
// sorted store from the back in place.
func (s *Store) mergeLocked(recs []pps.Encoded) {
	batch := append([]pps.Encoded(nil), recs...)
	sort.SliceStable(batch, func(a, b int) bool { return batch[a].ID < batch[b].ID })
	// Dedup equal IDs keeping the last occurrence (stable sort keeps
	// input order within an ID, so the final write wins).
	w := 0
	for i := range batch {
		if i+1 < len(batch) && batch[i+1].ID == batch[i].ID {
			continue
		}
		batch[w] = batch[i]
		w++
	}
	batch = batch[:w]
	// Count genuinely new IDs to size the grown slice.
	fresh := 0
	for i, j := 0, 0; i < len(batch); i++ {
		for j < len(s.recs) && s.recs[j].ID < batch[i].ID {
			j++
		}
		if j >= len(s.recs) || s.recs[j].ID != batch[i].ID {
			fresh++
		}
	}
	old := len(s.recs)
	s.recs = append(s.recs, make([]pps.Encoded, fresh)...)
	// Backward merge: read old records from old-1 down, batch from the
	// end; equal IDs take the batch record (replacement) and consume both.
	i, j, k := old-1, len(batch)-1, len(s.recs)-1
	for j >= 0 {
		switch {
		case i >= 0 && s.recs[i].ID == batch[j].ID:
			s.recs[k] = batch[j]
			i--
			j--
		case i >= 0 && s.recs[i].ID > batch[j].ID:
			s.recs[k] = s.recs[i]
			i--
		default:
			s.recs[k] = batch[j]
			j--
		}
		k--
	}
	// Records below i are already in place.
}

// Delete removes records by id; absent ids are ignored. A single id
// takes the binary-search + shift fast path; batches sort the ids and
// compact the store in one forward pass, so deleting k of n records
// costs O(k log k + n) instead of one O(n) memmove per id. Freed tail
// slots are zeroed so the removed records' blobs are GC-eligible.
func (s *Store) Delete(ids ...uint64) {
	if len(ids) == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(ids) == 1 {
		id := ids[0]
		i := sort.Search(len(s.recs), func(i int) bool { return s.recs[i].ID >= id })
		if i < len(s.recs) && s.recs[i].ID == id {
			copy(s.recs[i:], s.recs[i+1:])
			clear(s.recs[len(s.recs)-1:])
			s.recs = s.recs[:len(s.recs)-1]
		}
		return
	}
	del := append([]uint64(nil), ids...)
	sort.Slice(del, func(a, b int) bool { return del[a] < del[b] })
	w := 0
	j := 0
	for i := range s.recs {
		id := s.recs[i].ID
		for j < len(del) && del[j] < id {
			j++
		}
		if j < len(del) && del[j] == id {
			continue
		}
		s.recs[w] = s.recs[i]
		w++
	}
	clear(s.recs[w:])
	s.recs = s.recs[:w]
}

// Get returns the record with the given id.
func (s *Store) Get(id uint64) (pps.Encoded, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	i := sort.Search(len(s.recs), func(i int) bool { return s.recs[i].ID >= id })
	if i < len(s.recs) && s.recs[i].ID == id {
		return s.recs[i], true
	}
	return pps.Encoded{}, false
}

// InArc returns copies of the records whose ring point lies in the
// half-open arc (lo, hi] — the match set of a sub-query. The arc may
// wrap zero, producing at most two contiguous slices internally.
func (s *Store) InArc(lo, hi ring.Point) []pps.Encoded {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []pps.Encoded
	s.forArcLocked(lo, hi, func(batch []pps.Encoded) bool {
		out = append(out, batch...)
		return true
	}, 1<<30)
	return out
}

// CountArc returns the number of records in (lo, hi].
func (s *Store) CountArc(lo, hi ring.Point) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	s.forArcLocked(lo, hi, func(batch []pps.Encoded) bool {
		n += len(batch)
		return true
	}, 1<<30)
	return n
}

// forArcLocked feeds records with point in (lo, hi] to fn in batches of
// at most batchSize. lo == hi denotes the full ring (ring.MatchSpan
// convention). fn returning false stops iteration. Records are passed
// as sub-slices of the internal array; the caller must hold the read
// lock for as long as the slices are referenced.
func (s *Store) forArcLocked(lo, hi ring.Point, fn func([]pps.Encoded) bool, batchSize int) {
	if len(s.recs) == 0 {
		return
	}
	if ring.MatchSpan(lo, hi) >= 1 {
		emitFull := func(from, to int) bool {
			for from < to {
				end := from + batchSize
				if end > to {
					end = to
				}
				if !fn(s.recs[from:end]) {
					return false
				}
				from = end
			}
			return true
		}
		emitFull(0, len(s.recs))
		return
	}
	// (lo, hi] in id space: ids in (IDOf(lo), IDOf(hi)] approximately;
	// the float conversion is monotone so ordering is preserved.
	loID, hiID := IDOf(lo), IDOf(hi)
	emit := func(from, to int) bool { // [from, to) index range
		for from < to {
			end := from + batchSize
			if end > to {
				end = to
			}
			if !fn(s.recs[from:end]) {
				return false
			}
			from = end
		}
		return true
	}
	idx := func(id uint64) int {
		return sort.Search(len(s.recs), func(i int) bool { return s.recs[i].ID > id })
	}
	if loID < hiID {
		emit(idx(loID), idx(hiID))
		return
	}
	// Wrapping arc: (loID, max] then [0, hiID].
	if !emit(idx(loID), len(s.recs)) {
		return
	}
	emit(0, idx(hiID))
}

// RetainStored drops every record outside the node's stored set for the
// given range and partitioning level (used when p increases and replicas
// must be dropped, §4.5). It returns the number of deleted records.
// The stored set of a node with range [start, end) is (start-1/p, end).
func (s *Store) RetainStored(nodeRange ring.Arc, p int) int {
	repl := 1 / float64(p)
	keepLo := nodeRange.Start.Add(-repl)
	keepHi := nodeRange.End()
	if nodeRange.Length+repl >= 1 {
		return 0 // node stores everything
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	old := s.recs
	kept := s.recs[:0]
	dropped := 0
	for _, r := range s.recs {
		pt := PointOf(r.ID)
		d := keepLo.DistCW(pt)
		if d > 0 && d < keepLo.DistCW(keepHi) {
			kept = append(kept, r)
		} else {
			dropped++
		}
	}
	// The compaction left the dropped records' final copies sitting in
	// the backing array past len(kept); zero them so their encrypted
	// blobs are garbage-collectable instead of pinned until the next
	// slice growth.
	clear(old[len(kept):])
	s.recs = kept
	return dropped
}

// MatchOptions tunes the producer/consumer pipeline.
type MatchOptions struct {
	// Threads is the number of matching goroutines (§5.6.3: one per
	// core; Fig 5.5 sweeps this). 0 means 1.
	Threads int
	// BatchSize is the records-per-batch handed to matchers (§5.6.3
	// batches to limit synchronisation). 0 means 256.
	BatchSize int
	// Limiter, when set, is invoked by each consumer with the batch
	// length before matching. The cluster experiments install a
	// calibrated sleep here to emulate the heterogeneous hardware of
	// Table 7.1 (see DESIGN.md substitutions). The limiter receives the
	// caller's context and must return promptly once it is cancelled
	// (returning ctx.Err()), so a hedged-away or timed-out sub-query
	// aborts mid-throttle instead of sleeping out the emulated scan.
	Limiter func(ctx context.Context, n int) error
}

// matchPool is the consumer side of the §5.6.3 pipeline, shared by the
// in-memory MatchArc and the disk-bound MatchFile: `threads` goroutines
// drain a batch channel through per-thread Runs (each owning a
// zero-allocation PRF kernel), honouring the optional limiter. A
// limiter failure aborts that consumer's matching but keeps draining
// the channel so the producer never blocks; the first such error is
// surfaced by join, because a partially-scanned arc must never look
// like a complete answer.
type matchPool struct {
	wg      sync.WaitGroup
	mu      sync.Mutex
	matched []uint64
	total   int
	limErr  error
}

func runMatchers(ctx context.Context, m *pps.Matcher, q pps.Query, threads int, limiter func(context.Context, int) error, jobs <-chan []pps.Encoded) *matchPool {
	p := &matchPool{}
	for t := 0; t < threads; t++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			run := m.NewRun(q) // per-thread dynamic predicate ordering
			local := make([]uint64, 0, 64)
			n := 0
			var aborted error
			for recs := range jobs {
				if aborted != nil {
					continue // drain the channel so the producer unblocks
				}
				if limiter != nil {
					if err := limiter(ctx, len(recs)); err != nil {
						aborted = err
						continue
					}
				}
				local = run.MatchBatch(recs, local)
				n += len(recs)
			}
			p.mu.Lock()
			p.matched = append(p.matched, local...)
			p.total += n
			if aborted != nil && p.limErr == nil {
				p.limErr = aborted
			}
			p.mu.Unlock()
		}()
	}
	return p
}

// join waits for the consumers (the jobs channel must be closed first)
// and returns the merged matches, records scanned, and the first
// limiter error.
func (p *matchPool) join() ([]uint64, int, error) {
	p.wg.Wait()
	return p.matched, p.total, p.limErr
}

// MatchArc runs the encrypted query against every record in (lo, hi]
// using the two-stage pipeline: a producer walks the store feeding a
// bounded channel while consumer threads match. Returns the ids of
// matching records and the number scanned.
func (s *Store) MatchArc(ctx context.Context, m *pps.Matcher, q pps.Query, lo, hi ring.Point, opts MatchOptions) (ids []uint64, scanned int, err error) {
	threads := opts.Threads
	if threads <= 0 {
		threads = 1
	}
	batch := opts.BatchSize
	if batch <= 0 {
		batch = 256
	}
	jobs := make(chan []pps.Encoded, 2*threads)
	pool := runMatchers(ctx, m, q, threads, opts.Limiter, jobs)
	// The read lock is held until every consumer drains: batches are
	// views into the backing array and concurrent inserts would shift it.
	s.mu.RLock()
	s.forArcLocked(lo, hi, func(recs []pps.Encoded) bool {
		select {
		case <-ctx.Done():
			return false
		case jobs <- recs:
			return true
		}
	}, batch)
	close(jobs)
	matched, total, limErr := pool.join()
	s.mu.RUnlock()
	if err := ctx.Err(); err != nil {
		return nil, total, err
	}
	if limErr != nil {
		return nil, total, limErr
	}
	sort.Slice(matched, func(a, b int) bool { return matched[a] < matched[b] })
	return matched, total, nil
}
