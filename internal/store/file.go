package store

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"roar/internal/pps"
)

// This file provides the on-disk layout of §5.6.2: records stored
// sequentially in one file, read back with large sequential reads. The
// disk-bound PPS experiments (Figs 5.4, 5.6) stream queries from these
// files through the same producer/consumer pipeline as the in-memory
// path, reproducing the I/O-bound vs CPU-bound crossover the paper
// measures.

// SaveFile writes records sequentially, each as a uint32 length prefix
// plus the record's binary encoding.
func SaveFile(path string, recs []pps.Encoded) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("store: creating %s: %w", path, err)
	}
	w := bufio.NewWriterSize(f, 1<<20)
	for i := range recs {
		b, err := recs[i].MarshalBinary()
		if err != nil {
			f.Close()
			return fmt.Errorf("store: encoding record %d: %w", recs[i].ID, err)
		}
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], uint32(len(b)))
		if _, err := w.Write(hdr[:]); err != nil {
			f.Close()
			return err
		}
		if _, err := w.Write(b); err != nil {
			f.Close()
			return err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// SaveTo persists the whole store.
func (s *Store) SaveTo(path string) error {
	s.mu.RLock()
	recs := append([]pps.Encoded(nil), s.recs...)
	s.mu.RUnlock()
	return SaveFile(path, recs)
}

// LoadFile reads every record from a file written by SaveFile,
// abandoning the read when ctx ends.
func LoadFile(ctx context.Context, path string) ([]pps.Encoded, error) {
	var out []pps.Encoded
	_, err := StreamFile(ctx, path, 1024, func(batch []pps.Encoded) bool {
		out = append(out, batch...)
		return true
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// LoadFrom replaces the store contents from a file, abandoning the
// read when ctx ends.
func (s *Store) LoadFrom(ctx context.Context, path string) error {
	recs, err := LoadFile(ctx, path)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.recs = s.recs[:0]
	s.mu.Unlock()
	s.Insert(recs...)
	return nil
}

// StreamFile reads records sequentially, delivering them to fn in
// batches. Returns the number of records read. fn returning false stops
// the stream early.
func StreamFile(ctx context.Context, path string, batchSize int, fn func([]pps.Encoded) bool) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, fmt.Errorf("store: opening %s: %w", path, err)
	}
	defer f.Close()
	if batchSize <= 0 {
		batchSize = 256
	}
	r := bufio.NewReaderSize(f, 1<<20)
	total := 0
	batch := make([]pps.Encoded, 0, batchSize)
	for {
		if err := ctx.Err(); err != nil {
			return total, err
		}
		var hdr [4]byte
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			if err == io.EOF {
				break
			}
			return total, fmt.Errorf("store: reading %s: %w", path, err)
		}
		n := binary.BigEndian.Uint32(hdr[:])
		buf := make([]byte, n)
		if _, err := io.ReadFull(r, buf); err != nil {
			return total, fmt.Errorf("store: truncated record in %s: %w", path, err)
		}
		var rec pps.Encoded
		if err := rec.UnmarshalBinary(buf); err != nil {
			return total, fmt.Errorf("store: corrupt record in %s: %w", path, err)
		}
		batch = append(batch, rec)
		total++
		if len(batch) >= batchSize {
			if !fn(batch) {
				return total, nil
			}
			batch = make([]pps.Encoded, 0, batchSize)
		}
	}
	if len(batch) > 0 {
		fn(batch)
	}
	return total, nil
}

// MatchFile runs an encrypted query against a record file with the
// disk-bound pipeline: the producer streams from disk while consumer
// threads match (§5.6.3's two-thread decoupling; Fig 5.4 traces exactly
// this structure).
func MatchFile(ctx context.Context, path string, m *pps.Matcher, q pps.Query, opts MatchOptions) (ids []uint64, scanned int, err error) {
	threads := opts.Threads
	if threads <= 0 {
		threads = 1
	}
	batch := opts.BatchSize
	if batch <= 0 {
		batch = 256
	}
	jobs := make(chan []pps.Encoded, 2*threads)
	pool := runMatchers(ctx, m, q, threads, opts.Limiter, jobs)
	total, serr := StreamFile(ctx, path, batch, func(recs []pps.Encoded) bool {
		select {
		case <-ctx.Done():
			return false
		case jobs <- recs:
			return true
		}
	})
	close(jobs)
	matched, _, limErr := pool.join()
	if serr != nil {
		return nil, total, serr
	}
	// StreamFile reports nil when the producer callback stops early, and
	// consumers drain (without matching) after a limiter abort — both are
	// cancellation, not a complete scan, and must surface as the error.
	if err := ctx.Err(); err != nil {
		return nil, total, err
	}
	if limErr != nil {
		return nil, total, limErr
	}
	return matched, total, nil
}
