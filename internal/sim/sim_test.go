package sim

import (
	"math"
	"math/rand"
	"testing"

	"roar/internal/workload"
)

func baseConfig(algo Algo) Config {
	return Config{
		Algo:       algo,
		N:          24,
		P:          4,
		Speeds:     workload.UniformSpeeds(24, 1), // 1 dataset/s each
		Rate:       2,
		NumQueries: 800,
		Seed:       1,
	}
}

func TestRunUniformDelays(t *testing.T) {
	// With uniform speeds, light load, no overhead: each sub-query of
	// size 1/4 at speed 1 takes 0.25s; all algorithms should sit near
	// that service time.
	for _, algo := range []Algo{ROAR, ROAR2, PTN, SW} {
		res, err := Run(baseConfig(algo))
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if res.Overloaded {
			t.Fatalf("%v overloaded at light load", algo)
		}
		if res.MeanDelay < 0.25-1e-9 {
			t.Errorf("%v mean %v below service time 0.25", algo, res.MeanDelay)
		}
		if res.MeanDelay > 0.6 {
			t.Errorf("%v mean %v too high at light load", algo, res.MeanDelay)
		}
	}
}

func TestOptIsLowerBound(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	speeds := workload.LogNormalSpeeds(24, 1, 0.4, rng)
	var optDelay float64
	cfg := baseConfig(OPT)
	cfg.Speeds = speeds
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	optDelay = res.MeanDelay
	for _, algo := range []Algo{ROAR, ROAR2, PTN, SW} {
		cfg := baseConfig(algo)
		cfg.Speeds = speeds
		cfg.ProportionalRanges = true
		r, err := Run(cfg)
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if r.Overloaded {
			continue
		}
		if r.MeanDelay < optDelay-1e-9 {
			t.Errorf("%v mean %v beats the OPT bound %v", algo, r.MeanDelay, optDelay)
		}
	}
}

func TestOrderingROARvsSW(t *testing.T) {
	// Heterogeneous servers: ROAR (r choices per query point, plus the
	// full sweep) must beat SW (r offset choices only) and lose to or
	// match PTN (r^p choices) — the §6.1.2 ordering.
	rng := rand.New(rand.NewSource(11))
	speeds := workload.LogNormalSpeeds(24, 1, 0.6, rng)
	delays := map[Algo]float64{}
	for _, algo := range []Algo{ROAR, PTN, SW} {
		cfg := baseConfig(algo)
		cfg.Speeds = speeds
		cfg.Rate = 1
		cfg.NumQueries = 1500
		cfg.Seed = 3
		cfg.ProportionalRanges = true
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		delays[algo] = res.MeanDelay
	}
	if delays[ROAR] > delays[SW]+1e-9 {
		t.Errorf("ROAR (%v) should not be slower than SW (%v)", delays[ROAR], delays[SW])
	}
	if delays[PTN] > delays[SW]+1e-9 {
		t.Errorf("PTN (%v) should not be slower than SW (%v)", delays[PTN], delays[SW])
	}
}

func TestOverloadDetection(t *testing.T) {
	cfg := baseConfig(ROAR)
	// Capacity: 24 servers × 1 dataset/s with 1/4-size sub-queries =
	// 24 queries/s max; 100/s is far beyond saturation.
	cfg.Rate = 100
	cfg.NumQueries = 1500
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Overloaded {
		t.Errorf("expected overload at rate 100, got mean %v", res.MeanDelay)
	}
	if !math.IsInf(res.MeanDelay, 1) {
		t.Error("overloaded delay should be +Inf")
	}
}

func TestHigherPQReducesDelayAtLowLoad(t *testing.T) {
	// §4.2: at low utilisation, pq > p reduces delay for CPU-bound
	// queries because more servers share the work.
	base := baseConfig(ROAR)
	base.Rate = 0.5
	res1, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	hi := base
	hi.PQ = 12
	res2, err := Run(hi)
	if err != nil {
		t.Fatal(err)
	}
	if res2.MeanDelay >= res1.MeanDelay {
		t.Errorf("pq=12 (%v) should beat pq=4 (%v) at low load", res2.MeanDelay, res1.MeanDelay)
	}
}

func TestFixedOverheadRaisesDelay(t *testing.T) {
	a := baseConfig(ROAR)
	ra, _ := Run(a)
	b := a
	b.FixedOverhead = 0.05
	rb, err := Run(b)
	if err != nil {
		t.Fatal(err)
	}
	if rb.MeanDelay <= ra.MeanDelay {
		t.Errorf("overhead must increase delay: %v vs %v", rb.MeanDelay, ra.MeanDelay)
	}
}

func TestSpeedEstimationErrorHurts(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	speeds := workload.LogNormalSpeeds(24, 1, 0.6, rng)
	means := map[float64]float64{}
	for _, e := range []float64{0, 0.8} {
		cfg := baseConfig(ROAR)
		cfg.Speeds = speeds
		cfg.EstErrFrac = e
		cfg.Rate = 3
		cfg.NumQueries = 1500
		cfg.ProportionalRanges = true
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		means[e] = res.MeanDelay
	}
	if means[0.8] < means[0] {
		t.Errorf("large estimation error (%v) should not beat perfect estimates (%v)", means[0.8], means[0])
	}
}

func TestAblationMechanismsHelp(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	speeds := workload.LogNormalSpeeds(24, 1, 0.8, rng)
	run := func(adjust bool, splits int) float64 {
		cfg := baseConfig(ROAR)
		cfg.Speeds = speeds
		cfg.P = 6 // low r where the optimisations matter
		cfg.Rate = 1
		cfg.RangeAdjust = adjust
		cfg.MaxSplits = splits
		cfg.ProportionalRanges = true
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.MeanDelay
	}
	plain := run(false, 0)
	adjusted := run(true, 0)
	split := run(false, 2)
	if adjusted > plain+1e-9 {
		t.Errorf("range adjustment should not hurt: %v vs %v", adjusted, plain)
	}
	if split > plain+1e-9 {
		t.Errorf("splitting should not hurt at low load: %v vs %v", split, plain)
	}
	if adjusted == plain && split == plain {
		t.Error("at high heterogeneity at least one mechanism should change the outcome")
	}
}

func TestRandSchedulerWorseOrEqual(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	speeds := workload.LogNormalSpeeds(24, 1, 0.6, rng)
	run := func(tries int) float64 {
		cfg := baseConfig(ROAR)
		cfg.Speeds = speeds
		cfg.RandTries = tries
		cfg.ProportionalRanges = true
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.MeanDelay
	}
	alg1 := run(0)
	rand1 := run(1)
	if alg1 > rand1+1e-9 {
		t.Errorf("Algorithm 1 (%v) must not lose to 1 random try (%v)", alg1, rand1)
	}
}

func TestRunValidation(t *testing.T) {
	cfg := baseConfig(ROAR)
	cfg.P = 0
	if _, err := Run(cfg); err == nil {
		t.Error("p=0 rejected")
	}
	cfg = baseConfig(ROAR)
	cfg.Speeds = cfg.Speeds[:3]
	if _, err := Run(cfg); err == nil {
		t.Error("speed length mismatch rejected")
	}
	cfg = baseConfig(ROAR)
	cfg.PQ = 2
	if _, err := Run(cfg); err == nil {
		t.Error("pq<p rejected")
	}
	cfg = baseConfig(SW)
	cfg.N = 23 // p does not divide n
	cfg.Speeds = workload.UniformSpeeds(23, 1)
	if _, err := Run(cfg); err == nil {
		t.Error("SW with p∤n rejected")
	}
}

func TestUnavailabilityMonotone(t *testing.T) {
	cfg := AvailabilityConfig{Algo: ROAR, N: 24, P: 4, Trials: 2000, Seed: 1}
	prev := -1.0
	for _, k := range []int{0, 6, 12, 18, 24} {
		u, err := Unavailability(cfg, k)
		if err != nil {
			t.Fatal(err)
		}
		if u < prev-0.02 {
			t.Errorf("unavailability should grow with failures: k=%d u=%v prev=%v", k, u, prev)
		}
		prev = u
	}
	if u, _ := Unavailability(cfg, 0); u != 0 {
		t.Errorf("no failures => no loss, got %v", u)
	}
	if u, _ := Unavailability(cfg, 24); u != 1 {
		t.Errorf("all failed => certain loss, got %v", u)
	}
}

func TestUnavailabilityOrdering(t *testing.T) {
	// At moderate failure counts: SW loses data most easily (any r-run),
	// ROAR needs a strictly longer run, two rings and PTN are hardest to
	// kill. We check SW >= ROAR >= ROAR2 at a mid point.
	k := 8
	get := func(algo Algo) float64 {
		u, err := Unavailability(AvailabilityConfig{Algo: algo, N: 24, P: 8, Trials: 6000, Seed: 2}, k)
		if err != nil {
			t.Fatal(err)
		}
		return u
	}
	uSW, uROAR, uROAR2 := get(SW), get(ROAR), get(ROAR2)
	if uROAR > uSW+0.02 {
		t.Errorf("ROAR unavailability %v should not exceed SW %v", uROAR, uSW)
	}
	if uROAR2 > uROAR+0.02 {
		t.Errorf("two rings %v should not be worse than one %v", uROAR2, uROAR)
	}
}

func TestUnavailabilityValidation(t *testing.T) {
	if _, err := Unavailability(AvailabilityConfig{Algo: ROAR, N: 0, P: 1}, 0); err == nil {
		t.Error("bad N rejected")
	}
	if _, err := Unavailability(AvailabilityConfig{Algo: ROAR, N: 4, P: 2, Trials: 10}, 9); err == nil {
		t.Error("failures > n rejected")
	}
	if _, err := Unavailability(AvailabilityConfig{Algo: OPT, N: 4, P: 2, Trials: 10}, 1); err == nil {
		t.Error("OPT availability undefined")
	}
}

func TestMessageCosts(t *testing.T) {
	rows, err := MessageCosts(40, 8, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("want 4 rows, got %d", len(rows))
	}
	store := rows[0]
	if store.RAND <= store.PTN {
		t.Errorf("RAND store cost %v should exceed PTN %v (c=2 overprovisioning)", store.RAND, store.PTN)
	}
	query := rows[1]
	if query.ROAR != 8 || query.PTN != 8 {
		t.Errorf("query cost should equal p=8: %+v", query)
	}
	incR := rows[2]
	if incR.PTN <= incR.ROAR {
		t.Errorf("PTN reconfiguration %v must cost more than ROAR %v", incR.PTN, incR.ROAR)
	}
	decR := rows[3]
	if decR.ROAR != 0 || decR.SW != 0 {
		t.Errorf("decreasing r should be free for ROAR/SW: %+v", decR)
	}
	if _, err := MessageCosts(0, 1, 1); err == nil {
		t.Error("bad n rejected")
	}
}

func TestReconfigurationCost(t *testing.T) {
	roarF, ptnF, err := ReconfigurationCost(40, 8, 4) // r: 5 -> 10
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(roarF-5) > 1e-9 {
		t.Errorf("ROAR transfer = %v copies/object, want 5", roarF)
	}
	if ptnF <= roarF/float64(40) {
		t.Errorf("PTN fraction %v suspiciously small", ptnF)
	}
	// Shrinking replication is free for ROAR.
	roarF, _, err = ReconfigurationCost(40, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if roarF != 0 {
		t.Errorf("shrinking r should be free for ROAR, got %v", roarF)
	}
}

func TestAlgoString(t *testing.T) {
	for _, a := range []Algo{ROAR, ROAR2, PTN, SW, RAND, OPT} {
		if a.String() == "" {
			t.Error("algo should render")
		}
	}
	if Algo(99).String() == "" {
		t.Error("unknown algo should render")
	}
}
