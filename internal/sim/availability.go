package sim

import (
	"fmt"
	"math/rand"
)

// This file reproduces the fault-tolerance analysis of §6.2 (Fig 6.8):
// the probability that, after k simultaneous fail-stop failures, some
// object has lost every replica — making strict (100% harvest) queries
// impossible until recovery.

// AvailabilityConfig parameterises the Monte-Carlo availability study.
type AvailabilityConfig struct {
	Algo   Algo // ROAR, ROAR2, PTN or SW
	N      int
	P      int
	Trials int
	Seed   int64
}

// Unavailability estimates P(data loss | k failures) over random
// failure sets. Equal node ranges / even clusters are assumed, matching
// the paper's analysis setting.
func Unavailability(cfg AvailabilityConfig, failures int) (float64, error) {
	if cfg.N <= 0 || cfg.P <= 0 || cfg.P > cfg.N {
		return 0, fmt.Errorf("sim: bad N=%d P=%d", cfg.N, cfg.P)
	}
	if failures < 0 || failures > cfg.N {
		return 0, fmt.Errorf("sim: %d failures out of %d nodes", failures, cfg.N)
	}
	if cfg.Trials <= 0 {
		cfg.Trials = 5000
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	lost := 0
	for t := 0; t < cfg.Trials; t++ {
		dead := make([]bool, cfg.N)
		for _, i := range rng.Perm(cfg.N)[:failures] {
			dead[i] = true
		}
		var l bool
		var err error
		switch cfg.Algo {
		case ROAR:
			l = roarLoss(dead, cfg.P, 1)
		case ROAR2:
			l = roarLoss(dead, cfg.P, 2)
		case PTN:
			l = ptnLoss(dead, cfg.P)
		case SW:
			if cfg.N%cfg.P != 0 {
				err = fmt.Errorf("sim: SW requires p|n")
			} else {
				l = swLoss(dead, cfg.N/cfg.P)
			}
		default:
			err = fmt.Errorf("sim: availability undefined for %v", cfg.Algo)
		}
		if err != nil {
			return 0, err
		}
		if l {
			lost++
		}
	}
	return float64(lost) / float64(cfg.Trials), nil
}

// interval is a closed arc [lo, hi] of object ids (hi may be < lo when
// wrapping; we avoid wrap by cutting runs at the 0 boundary is not
// needed because runs are built in node order and converted carefully).
type interval struct{ lo, hi float64 }

// roarLoss reports whether some object id has lost all replicas across
// the given number of rings, with n nodes split evenly across rings and
// equal ranges within each ring. An object at id is lost on one ring
// when a contiguous run of dead nodes covers its whole replication arc
// [id, id+1/p); with multiple rings it must be lost on every ring.
func roarLoss(dead []bool, p int, nRings int) bool {
	n := len(dead)
	// Split nodes round-robin across rings (ids 0..n-1).
	var perRing [][]interval
	for k := 0; k < nRings; k++ {
		var members []int
		for i := k; i < n; i += nRings {
			members = append(members, i)
		}
		perRing = append(perRing, ringLostIntervals(dead, members, p))
		if len(perRing[k]) == 0 {
			return false // this ring alone preserves every object
		}
	}
	// Lost iff the per-ring lost-id sets intersect.
	common := perRing[0]
	for k := 1; k < nRings; k++ {
		common = intersectIntervals(common, perRing[k])
		if len(common) == 0 {
			return false
		}
	}
	return len(common) > 0
}

// ringLostIntervals returns the set of object ids with no live replica
// on a ring whose members (in ring order) have equal ranges. A run of
// dead nodes spanning an arc strictly longer than 1/p loses the objects
// whose whole replication arc fits inside it; a run of exactly 1/p
// loses only a measure-zero boundary point and is not counted — this is
// the continuous ring's small availability edge over discrete SW.
func ringLostIntervals(dead []bool, members []int, p int) []interval {
	m := len(members)
	allDead := true
	for _, i := range members {
		if !dead[i] {
			allDead = false
			break
		}
	}
	if allDead {
		return []interval{{lo: 0, hi: 1}}
	}
	w := 1.0 / float64(m) // range width per node on this ring
	repl := 1.0 / float64(p)
	var out []interval
	for i := 0; i < m; i++ {
		// Only start at true run heads: dead node with a live predecessor.
		if !dead[members[i]] || dead[members[(i-1+m)%m]] {
			continue
		}
		runLen := 0
		for j := i; dead[members[j%m]] && runLen < m; j++ {
			runLen++
		}
		start := float64(i) * w
		length := float64(runLen) * w
		if length > repl+1e-12 {
			// Objects in [start, start+length-repl] lose every replica.
			out = append(out, interval{lo: start, hi: start + length - repl})
		}
	}
	return out
}

// intersectIntervals intersects two sets of closed intervals on the
// circle, treating coordinates mod 1.
func intersectIntervals(a, b []interval) []interval {
	var out []interval
	for _, x := range a {
		for _, y := range b {
			if iv, ok := intersectOne(x, y); ok {
				out = append(out, iv)
			}
		}
	}
	return out
}

func intersectOne(x, y interval) (interval, bool) {
	// Normalise to linear coordinates by unrolling wrap: try both y and
	// y shifted ±1.
	for _, shift := range []float64{-1, 0, 1} {
		lo := maxFl(x.lo, y.lo+shift)
		hi := minFl(x.hi, y.hi+shift)
		if lo <= hi {
			return interval{lo: lo, hi: hi}, true
		}
	}
	return interval{}, false
}

func maxFl(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func minFl(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// ptnLoss reports whether some cluster is entirely dead (nodes assigned
// round-robin to p clusters).
func ptnLoss(dead []bool, p int) bool {
	n := len(dead)
	for k := 0; k < p; k++ {
		all := true
		any := false
		for i := k; i < n; i += p {
			any = true
			if !dead[i] {
				all = false
				break
			}
		}
		if any && all {
			return true
		}
	}
	return false
}

// swLoss reports whether r consecutive nodes (in circular list order)
// are all dead — the discrete sliding window's loss condition.
func swLoss(dead []bool, r int) bool {
	n := len(dead)
	run := 0
	// Scan twice around to catch wrapping runs.
	for i := 0; i < 2*n; i++ {
		if dead[i%n] {
			run++
			if run >= r {
				return true
			}
		} else {
			run = 0
		}
	}
	return false
}
