package sim

import (
	"fmt"

	"roar/internal/ptn"
	"roar/internal/randdr"
	"roar/internal/ring"
)

// This file reproduces Table 6.2 ("Bandwidth consumption comparison,
// messages per operation") and the §6.3 reconfiguration-cost analysis.

// CostRow is one operation's per-algorithm message cost. Store and query
// costs are messages per operation; reconfiguration costs are total
// messages for changing the system's r by one with D objects stored.
type CostRow struct {
	Op   string
	ROAR float64
	PTN  float64
	SW   float64
	RAND float64
}

// MessageCosts evaluates the Table 6.2 model for a system of n servers,
// partitioning level p (so r = n/p) and D stored objects.
//
//   - Store: one message per replica created. ROAR's replication arc of
//     length 1/p intersects on average r+1 node ranges.
//   - Query: one message per sub-query. RAND sends c× more (c = 2).
//   - Increase r by one: ROAR and SW ship one new replica per object
//     (D messages, each node pulling 1/n of the data); PTN must tear
//     down a cluster and reload (the §3.1 asymmetric path, computed from
//     the ptn cost model); RAND extends each random walk by one hop.
//   - Decrease r by one: deletions only for ROAR/SW/RAND (counted as 0
//     data messages); PTN again pays the cluster restructuring.
func MessageCosts(n, p, d int) ([]CostRow, error) {
	if n <= 0 || p <= 0 || p > n {
		return nil, fmt.Errorf("sim: bad n=%d p=%d", n, p)
	}
	r := float64(n) / float64(p)
	c := 2.0 // RAND's overprovisioning constant

	ids := make([]ring.NodeID, n)
	for i := range ids {
		ids[i] = ring.NodeID(i)
	}
	cluster, err := ptn.New(ids, p)
	if err != nil {
		return nil, err
	}
	rd, err := randdr.New(ids, int(r+0.5), c)
	if err != nil {
		return nil, err
	}
	randStore, randQuery := rd.MessageCost()

	// PTN reconfiguration: fraction of the dataset transferred, times D
	// object messages. Increasing r by one with n fixed means p' chosen
	// so n/p' = r+1.
	pDown := int(float64(n) / (r + 1))
	if pDown < 1 {
		pDown = 1
	}
	downFrac, err := cluster.RepartitionCost(pDown)
	if err != nil {
		return nil, err
	}
	pUp := int(float64(n) / (r - 1))
	upFrac := 0.0
	if r > 1 && pUp <= n {
		upFrac, err = cluster.RepartitionCost(pUp)
		if err != nil {
			return nil, err
		}
	}

	df := float64(d)
	return []CostRow{
		{Op: "store object", ROAR: r + 1, PTN: r, SW: r, RAND: float64(randStore)},
		{Op: "run query", ROAR: float64(p), PTN: float64(p), SW: float64(p), RAND: float64(randQuery)},
		{Op: "increase r by 1", ROAR: df, PTN: downFrac * df, SW: df, RAND: df},
		{Op: "decrease r by 1", ROAR: 0, PTN: upFrac * df, SW: 0, RAND: 0},
	}, nil
}

// ReconfigurationCost compares the §6.3 r/p trade-off change for ROAR
// and PTN: the fraction of the dataset transferred when moving from
// partitioning level p to newP with n servers fixed.
//
// ROAR extends or contracts every object's replication arc: moving from
// p to newP < p transfers each object over an extra arc of length
// 1/newP - 1/p, i.e. a fraction (1/newP - 1/p)·n/... expressed relative
// to the dataset: each object gains (n/newP - n/p) replicas on average,
// so the transfer is (r' - r)/1 object-copies per object; shrinking
// transfers nothing.
func ReconfigurationCost(n, p, newP int) (roarFrac, ptnFrac float64, err error) {
	if n <= 0 || p <= 0 || newP <= 0 || p > n || newP > n {
		return 0, 0, fmt.Errorf("sim: bad n=%d p=%d newP=%d", n, p, newP)
	}
	ids := make([]ring.NodeID, n)
	for i := range ids {
		ids[i] = ring.NodeID(i)
	}
	cluster, err := ptn.New(ids, p)
	if err != nil {
		return 0, 0, err
	}
	ptnFrac, err = cluster.RepartitionCost(newP)
	if err != nil {
		return 0, 0, err
	}
	rOld := float64(n) / float64(p)
	rNew := float64(n) / float64(newP)
	if rNew > rOld {
		roarFrac = rNew - rOld // new replica copies per object
	}
	return roarFrac, ptnFrac, nil
}
