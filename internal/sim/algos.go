package sim

import (
	"fmt"
	"math/rand"
	"sort"

	"roar/internal/core"
	"roar/internal/ptn"
	"roar/internal/randdr"
	"roar/internal/ring"
	"roar/internal/sw"
)

// roarSched drives the production core.Placement/Schedule path.
type roarSched struct {
	pl     *core.Placement
	pq     int
	adjust bool
	splits int
	tries  int // >0: random-start scheduler instead of Algorithm 1
	rng    *rand.Rand
}

func newRoarSched(cfg Config, estSpeeds []float64, nRings int, rng *rand.Rand) (*roarSched, error) {
	rings, err := buildRings(cfg.N, estSpeeds, nRings, cfg.ProportionalRanges)
	if err != nil {
		return nil, err
	}
	pl, err := core.NewPlacement(cfg.P, rings...)
	if err != nil {
		return nil, err
	}
	return &roarSched{pl: pl, pq: cfg.PQ, adjust: cfg.RangeAdjust, splits: cfg.MaxSplits,
		tries: cfg.RandTries, rng: rng}, nil
}

// buildRings distributes n nodes (ids 0..n-1) over nRings rings with
// roughly equal total speed per ring (§4.9: the membership server gives
// equal processing capacity to each ring), node ranges proportional to
// speed when requested (§4.6), equal otherwise.
func buildRings(n int, speeds []float64, nRings int, proportional bool) ([]*ring.Ring, error) {
	if nRings <= 0 || n < nRings {
		return nil, fmt.Errorf("sim: cannot place %d nodes on %d rings", n, nRings)
	}
	// Assign nodes to rings: fastest-first to the lightest ring.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return speeds[order[a]] > speeds[order[b]] })
	members := make([][]int, nRings)
	totals := make([]float64, nRings)
	for _, i := range order {
		light := 0
		for k := 1; k < nRings; k++ {
			if totals[k] < totals[light] {
				light = k
			}
		}
		members[light] = append(members[light], i)
		totals[light] += speeds[i]
	}
	rings := make([]*ring.Ring, nRings)
	for k, ids := range members {
		sort.Ints(ids) // deterministic ring order
		r := ring.New()
		if proportional {
			var total float64
			for _, i := range ids {
				total += speeds[i]
			}
			pos := 0.0
			for _, i := range ids {
				if err := r.Insert(ring.NodeID(i), ring.Norm(pos)); err != nil {
					return nil, err
				}
				pos += speeds[i] / total
			}
		} else {
			for j, i := range ids {
				if err := r.Insert(ring.NodeID(i), ring.Norm(float64(j)/float64(len(ids)))); err != nil {
					return nil, err
				}
			}
		}
		rings[k] = r
	}
	return rings, nil
}

func (s *roarSched) schedule(st *state) ([]subAssign, error) {
	est := st.estimator()
	var plan core.Plan
	var err error
	if s.tries > 0 {
		plan, err = s.pl.ScheduleRandom(s.pq, s.tries, est, s.rng)
	} else {
		plan, err = s.pl.Schedule(s.pq, est)
	}
	if err != nil {
		return nil, err
	}
	if s.adjust {
		plan = s.pl.AdjustRanges(plan, est, 8)
	}
	if s.splits > 0 {
		plan = s.pl.SplitSlowest(plan, est, s.splits)
	}
	subs := make([]subAssign, len(plan.Subs))
	for i, sq := range plan.Subs {
		subs[i] = subAssign{node: int(sq.Node), size: sq.Size()}
	}
	return subs, nil
}

// ptnSched drives the cluster baseline with speed-balanced clusters.
type ptnSched struct {
	c *ptn.PTN
}

func newPtnSched(cfg Config, estSpeeds []float64) (*ptnSched, error) {
	ids := make([]ring.NodeID, cfg.N)
	speeds := make(map[ring.NodeID]float64, cfg.N)
	for i := range ids {
		ids[i] = ring.NodeID(i)
		speeds[ids[i]] = estSpeeds[i]
	}
	c, err := ptn.NewBalanced(ids, speeds, cfg.P)
	if err != nil {
		return nil, err
	}
	return &ptnSched{c: c}, nil
}

func (s *ptnSched) schedule(st *state) ([]subAssign, error) {
	plan, err := s.c.Schedule(st.estimator(), nil)
	if err != nil {
		return nil, err
	}
	size := 1 / float64(s.c.P())
	subs := make([]subAssign, len(plan.Subs))
	for i, a := range plan.Subs {
		subs[i] = subAssign{node: int(a.Node), size: size}
	}
	return subs, nil
}

// swSched drives the discrete sliding window baseline.
type swSched struct {
	s *sw.SW
}

func newSwSched(cfg Config, rng *rand.Rand) (*swSched, error) {
	if cfg.N%cfg.P != 0 {
		return nil, fmt.Errorf("sim: SW requires p|n, got n=%d p=%d", cfg.N, cfg.P)
	}
	r := cfg.N / cfg.P
	ids := make([]ring.NodeID, cfg.N)
	for i, j := range rng.Perm(cfg.N) {
		ids[i] = ring.NodeID(j)
	}
	s, err := sw.New(ids, r)
	if err != nil {
		return nil, err
	}
	return &swSched{s: s}, nil
}

func (s *swSched) schedule(st *state) ([]subAssign, error) {
	plan, err := s.s.Schedule(st.estimator(), nil)
	if err != nil {
		return nil, err
	}
	size := 1 / float64(s.s.P())
	subs := make([]subAssign, len(plan.Subs))
	for i, a := range plan.Subs {
		subs[i] = subAssign{node: int(a.Node), size: size}
	}
	return subs, nil
}

// randSched drives the randomized baseline with the standard c=2.
type randSched struct {
	d   *randdr.Rand
	rng *rand.Rand
}

func newRandSched(cfg Config, rng *rand.Rand) (*randSched, error) {
	ids := make([]ring.NodeID, cfg.N)
	for i := range ids {
		ids[i] = ring.NodeID(i)
	}
	r := cfg.N / cfg.P
	if r < 1 {
		r = 1
	}
	d, err := randdr.New(ids, r, 2)
	if err != nil {
		return nil, err
	}
	return &randSched{d: d, rng: rng}, nil
}

func (s *randSched) schedule(st *state) ([]subAssign, error) {
	plan, err := s.d.Schedule(st.estimator(), s.rng, nil)
	if err != nil {
		return nil, err
	}
	subs := make([]subAssign, len(plan.Subs))
	for i, a := range plan.Subs {
		// Each randomized target searches its full local share.
		subs[i] = subAssign{node: int(a.Node), size: 1 / float64(len(plan.Subs))}
	}
	return subs, nil
}

// optSched is the work-conserving lower bound of §6.1.1: every query is
// split across all servers proportionally to their true speed, so each
// finishes its share simultaneously — the best any rendezvous algorithm
// could do with perfect knowledge and infinitely divisible work.
type optSched struct{}

func (optSched) schedule(st *state) ([]subAssign, error) {
	var total float64
	for _, s := range st.trueSpeed {
		total += s
	}
	subs := make([]subAssign, len(st.trueSpeed))
	for i, s := range st.trueSpeed {
		subs[i] = subAssign{node: i, size: s / total}
	}
	return subs, nil
}
