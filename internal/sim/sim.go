// Package sim is the numerical simulator behind the Chapter 6 analytic
// evaluation. It reproduces the paper's simulation methodology (§6.1):
// queries arrive open-loop as a Poisson process; the front-end holds,
// for every server, the finish time of its last assigned task and a
// (possibly erroneous) speed estimate; each algorithm's scheduler picks
// servers; execution is serial per server at the server's true speed.
// Query delays are fitted against arrival time, and a slope above 0.1
// declares the run overloaded (exploding queues → infinite delay).
//
// The ROAR scheduler here is the same internal/core implementation the
// real frontend uses, so Figs 6.1–6.7 exercise production code.
package sim

import (
	"fmt"
	"math"
	"math/rand"

	"roar/internal/core"
	"roar/internal/ring"
	"roar/internal/stats"
	"roar/internal/workload"
)

// Algo selects the distributed-rendezvous algorithm to simulate.
type Algo int

// Simulated algorithms.
const (
	ROAR  Algo = iota // single ring, Algorithm 1 scheduling
	ROAR2             // two rings (§4.7)
	PTN               // cluster baseline
	SW                // discrete sliding window baseline
	RAND              // randomized baseline
	OPT               // work-conserving lower bound (§6.1.1)
)

func (a Algo) String() string {
	switch a {
	case ROAR:
		return "ROAR"
	case ROAR2:
		return "ROAR-2ring"
	case PTN:
		return "PTN"
	case SW:
		return "SW"
	case RAND:
		return "RAND"
	case OPT:
		return "OPT"
	}
	return fmt.Sprintf("Algo(%d)", int(a))
}

// Config parameterises one simulation run. Speeds are expressed as
// dataset fractions matched per second: a server with speed s completes
// a sub-query of size z (fraction of the id space) in z/s seconds.
type Config struct {
	Algo   Algo
	N      int       // number of servers
	P      int       // partitioning level (min for ROAR; clusters for PTN)
	PQ     int       // query partitioning level for ROAR (0 => P)
	Speeds []float64 // true per-server speeds; len N

	// EstErrFrac perturbs the scheduler's speed estimates by a uniform
	// ±fraction (Fig 6.5). 0 means perfect estimates.
	EstErrFrac float64

	Rate       float64 // query arrival rate, queries/second
	NumQueries int     // queries to simulate
	Seed       int64

	// Per-sub-query fixed overhead in seconds (thread start, message
	// processing — the constant cost §2 argues limits throughput).
	FixedOverhead float64

	// ROAR optimisations (Fig 6.7 ablation).
	RangeAdjust bool
	MaxSplits   int

	// ProportionalRanges gives ROAR nodes ring ranges proportional to
	// their estimated speed (§4.6). Disabled, ranges are equal.
	ProportionalRanges bool

	// RandTries replaces Algorithm 1 with the pick-k-random-starts
	// scheduler (0 = use Algorithm 1).
	RandTries int
}

// Result summarises a run.
type Result struct {
	Algo       Algo
	MeanDelay  float64
	P50        float64
	P90        float64
	P99        float64
	Overloaded bool
	// Utilisation is total busy time across servers divided by
	// (wall time × capacity); the energy model (Table 7.2) uses it.
	Utilisation float64
	// SubQueries is the average number of sub-queries sent per query
	// (grows with splitting and failures).
	SubQueries float64
}

func (r Result) String() string {
	if r.Overloaded {
		return fmt.Sprintf("%s: OVERLOADED", r.Algo)
	}
	return fmt.Sprintf("%s: mean=%.4fs p50=%.4f p90=%.4f p99=%.4f util=%.2f subs=%.1f",
		r.Algo, r.MeanDelay, r.P50, r.P90, r.P99, r.Utilisation, r.SubQueries)
}

// Run executes one simulation.
func Run(cfg Config) (Result, error) {
	if cfg.N <= 0 || cfg.P <= 0 || cfg.P > cfg.N {
		return Result{}, fmt.Errorf("sim: bad N=%d P=%d", cfg.N, cfg.P)
	}
	if len(cfg.Speeds) != cfg.N {
		return Result{}, fmt.Errorf("sim: %d speeds for N=%d", len(cfg.Speeds), cfg.N)
	}
	if cfg.NumQueries <= 0 {
		cfg.NumQueries = 2000
	}
	if cfg.PQ == 0 {
		cfg.PQ = cfg.P
	}
	if cfg.PQ < cfg.P {
		return Result{}, fmt.Errorf("sim: pq=%d below p=%d", cfg.PQ, cfg.P)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	est := workload.PerturbSpeeds(cfg.Speeds, cfg.EstErrFrac, rng)

	sched, err := newScheduler(cfg, est, rng)
	if err != nil {
		return Result{}, err
	}

	st := state{
		busyUntil: make([]float64, cfg.N),
		trueSpeed: cfg.Speeds,
		estSpeed:  est,
		overhead:  cfg.FixedOverhead,
	}
	arrivals := workload.NewPoisson(cfg.Rate, rng)

	delaysRaw := make([]float64, 0, cfg.NumQueries)
	times := make([]float64, 0, cfg.NumQueries)
	now := 0.0
	totalSubs := 0
	var busyTotal float64
	for q := 0; q < cfg.NumQueries; q++ {
		now += arrivals.NextSeconds()
		st.now = now
		subs, err := sched.schedule(&st)
		if err != nil {
			return Result{}, fmt.Errorf("sim: scheduling query %d: %w", q, err)
		}
		totalSubs += len(subs)
		finish := now
		for _, s := range subs {
			start := math.Max(st.busyUntil[s.node], now)
			dur := s.size/st.trueSpeed[s.node] + st.overhead
			end := start + dur
			st.busyUntil[s.node] = end
			busyTotal += dur
			if end > finish {
				finish = end
			}
		}
		delaysRaw = append(delaysRaw, finish-now)
		times = append(times, now)
	}

	res := Result{Algo: cfg.Algo}
	res.SubQueries = float64(totalSubs) / float64(cfg.NumQueries)
	// Overload detection per §6.1: slope of delay(arrival time) > 0.1.
	if slope, _, err := stats.LinearFit(times, delaysRaw); err == nil && slope > 0.1 {
		res.Overloaded = true
		res.MeanDelay = math.Inf(1)
		return res, nil
	}
	delays := stats.NewSample(len(delaysRaw))
	delays.AddAll(delaysRaw)
	res.MeanDelay = delays.Mean()
	res.P50 = delays.Percentile(50)
	res.P90 = delays.Percentile(90)
	res.P99 = delays.Percentile(99)
	res.Utilisation = busyTotal / (now * float64(cfg.N))
	return res, nil
}

// state is the simulated cluster state shared with schedulers.
type state struct {
	now       float64
	busyUntil []float64
	trueSpeed []float64
	estSpeed  []float64
	overhead  float64
}

// estimator builds the frontend's view: waiting time from exact queue
// state plus service time from the (possibly perturbed) speed estimate.
func (st *state) estimator() core.Estimator {
	return core.EstimatorFunc(func(id ring.NodeID, size float64) float64 {
		i := int(id)
		wait := math.Max(st.busyUntil[i]-st.now, 0)
		return wait + size/st.estSpeed[i] + st.overhead
	})
}

// subAssign is a scheduled sub-query in simulator terms.
type subAssign struct {
	node int
	size float64
}

// scheduler adapts each algorithm to the simulation loop.
type scheduler interface {
	schedule(st *state) ([]subAssign, error)
}

func newScheduler(cfg Config, estSpeeds []float64, rng *rand.Rand) (scheduler, error) {
	switch cfg.Algo {
	case ROAR:
		return newRoarSched(cfg, estSpeeds, 1, rng)
	case ROAR2:
		return newRoarSched(cfg, estSpeeds, 2, rng)
	case PTN:
		return newPtnSched(cfg, estSpeeds)
	case SW:
		return newSwSched(cfg, rng)
	case RAND:
		return newRandSched(cfg, rng)
	case OPT:
		return &optSched{}, nil
	default:
		return nil, fmt.Errorf("sim: unknown algorithm %v", cfg.Algo)
	}
}
