// Package workload generates the synthetic inputs used by the analytic
// simulator and the experimental cluster: open-loop Poisson query
// arrivals, Zipf-distributed search terms, synthetic file metadata (the
// PPS corpus), and calibrated server speed profiles standing in for the
// heterogeneous Hen/EC2 hardware of Table 7.1.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// Poisson generates exponentially distributed inter-arrival gaps for an
// open-loop arrival process with the given mean rate (events/second).
type Poisson struct {
	rate float64
	rng  *rand.Rand
}

// NewPoisson returns a Poisson arrival process. rate must be positive.
func NewPoisson(rate float64, rng *rand.Rand) *Poisson {
	if rate <= 0 {
		panic(fmt.Sprintf("workload: non-positive Poisson rate %v", rate))
	}
	return &Poisson{rate: rate, rng: rng}
}

// Next returns the gap to the next arrival.
func (p *Poisson) Next() time.Duration {
	gap := p.rng.ExpFloat64() / p.rate
	return time.Duration(gap * float64(time.Second))
}

// NextSeconds returns the gap in seconds (for the virtual-time simulator).
func (p *Poisson) NextSeconds() float64 { return p.rng.ExpFloat64() / p.rate }

// Zipf draws ranks 1..n with P(k) proportional to 1/k^s, the classic
// model for search-term popularity.
type Zipf struct {
	z *rand.Zipf
}

// NewZipf returns a Zipf sampler over [0, n) with exponent s > 1.
func NewZipf(n uint64, s float64, rng *rand.Rand) *Zipf {
	if s <= 1 {
		// rand.Zipf requires s > 1; nudge to the boundary-compatible value.
		s = 1.0001
	}
	return &Zipf{z: rand.NewZipf(rng, s, 1, n-1)}
}

// Draw returns a rank in [0, n).
func (z *Zipf) Draw() uint64 { return z.z.Uint64() }

// FileMeta is a plaintext description of one stored file: the input to
// PPS metadata encryption and the unit the distributed search matches.
type FileMeta struct {
	Path     string
	Size     int64     // bytes
	Modified time.Time // last modification
	Keywords []string  // most discriminating content keywords (≤ ~50)
}

// Corpus generates a deterministic synthetic home-directory-like corpus,
// mirroring the author's-home-directory dataset used in §5.7.
type Corpus struct {
	rng      *rand.Rand
	vocab    []string
	zipf     *Zipf
	dirDepth int
	epoch    time.Time
}

// NewCorpus returns a corpus generator with a vocabulary of vocabSize
// distinct words drawn under a Zipf popularity law.
func NewCorpus(vocabSize int, seed int64) *Corpus {
	rng := rand.New(rand.NewSource(seed))
	vocab := make([]string, vocabSize)
	for i := range vocab {
		vocab[i] = fmt.Sprintf("w%05d", i)
	}
	return &Corpus{
		rng:      rng,
		vocab:    vocab,
		zipf:     NewZipf(uint64(vocabSize), 1.2, rng),
		dirDepth: 6,
		epoch:    time.Date(2009, 1, 1, 0, 0, 0, 0, time.UTC),
	}
}

// Vocab returns the vocabulary (for query generation).
func (c *Corpus) Vocab() []string { return c.vocab }

// Word draws a vocabulary word under the popularity law.
func (c *Corpus) Word() string { return c.vocab[c.zipf.Draw()] }

// RareWord draws uniformly from the low-popularity half of the
// vocabulary, for queries that should match few or no documents.
func (c *Corpus) RareWord() string {
	half := len(c.vocab) / 2
	return c.vocab[half+c.rng.Intn(len(c.vocab)-half)]
}

// Generate produces n file metadata records.
func (c *Corpus) Generate(n int) []FileMeta {
	out := make([]FileMeta, n)
	for i := range out {
		out[i] = c.one(i)
	}
	return out
}

func (c *Corpus) one(i int) FileMeta {
	depth := 1 + c.rng.Intn(c.dirDepth)
	path := ""
	for d := 0; d < depth; d++ {
		path += "/" + c.Word()
	}
	path += fmt.Sprintf("/file%07d.%s", i, []string{"txt", "pdf", "jpg", "go", "c"}[c.rng.Intn(5)])
	nkw := 5 + c.rng.Intn(45) // up to ~50 keywords per §5.5
	kws := make([]string, 0, nkw)
	seen := map[string]bool{}
	for len(kws) < nkw {
		w := c.Word()
		if !seen[w] {
			seen[w] = true
			kws = append(kws, w)
		}
	}
	// Log-normal-ish file sizes: most small, some huge.
	size := int64(math.Exp(c.rng.NormFloat64()*2+9)) + 1 // median ~8KB
	mod := c.epoch.Add(time.Duration(c.rng.Int63n(int64(365 * 24 * time.Hour))))
	return FileMeta{Path: path, Size: size, Modified: mod, Keywords: kws}
}

// QueryStream draws query ranks under a Zipf popularity law over a
// universe of n distinct queries — the repeat-traffic model behind the
// frontend result cache (docs/ECONOMICS.md). At the web-search-like
// s = 1.0 roughly a third of an infinite stream repeats a recently-seen
// rank, which is what makes result caching pay.
type QueryStream struct {
	z *Zipf
}

// NewQueryStream returns a Zipf(s) query-rank sampler over [0, n).
func NewQueryStream(n uint64, s float64, rng *rand.Rand) *QueryStream {
	return &QueryStream{z: NewZipf(n, s, rng)}
}

// Next draws the next query rank in [0, n).
func (q *QueryStream) Next() uint64 { return q.z.Draw() }

// TenantMix draws tenant ids for a multi-tenant query stream: one "hot"
// tenant emits hotShare of all queries and the remainder spreads
// uniformly over n-1 well-behaved tenants — the adversarial shape the
// per-tenant admission quotas must isolate (a hot tenant at 10x offered
// load must be shed before its neighbours are).
type TenantMix struct {
	rng      *rand.Rand
	n        int
	hotShare float64
}

// NewTenantMix returns a mix over n >= 1 tenants. hotShare is clamped to
// [0, 1]; with n == 1 every draw is the hot tenant.
func NewTenantMix(n int, hotShare float64, rng *rand.Rand) *TenantMix {
	if n < 1 {
		n = 1
	}
	if hotShare < 0 {
		hotShare = 0
	}
	if hotShare > 1 {
		hotShare = 1
	}
	return &TenantMix{rng: rng, n: n, hotShare: hotShare}
}

// Hot returns the hot tenant's id.
func (m *TenantMix) Hot() string { return "tenant-0" }

// Next draws the next query's tenant id.
func (m *TenantMix) Next() string {
	if m.n == 1 || m.rng.Float64() < m.hotShare {
		return m.Hot()
	}
	return fmt.Sprintf("tenant-%d", 1+m.rng.Intn(m.n-1))
}

// ServerModel is a hardware profile, mirroring Table 7.1. Speeds are in
// metadata objects matched per second, calibrated from the §5.7
// single-machine measurements (Dell 1950: ~290k obj/s disk-bound,
// ~2.5M obj/s from memory with 4 match threads).
type ServerModel struct {
	Name        string
	DiskSpeed   float64 // objects/s when disk-bound
	MemSpeed    float64 // objects/s when CPU-bound from memory
	Cores       int
	IdleWatts   float64
	ActiveWatts float64
}

// The four server models of Table 7.1.
var (
	Dell1950 = ServerModel{Name: "Dell 1950", DiskSpeed: 290e3, MemSpeed: 2.5e6, Cores: 4, IdleWatts: 210, ActiveWatts: 320}
	Dell2950 = ServerModel{Name: "Dell 2950", DiskSpeed: 340e3, MemSpeed: 3.1e6, Cores: 8, IdleWatts: 230, ActiveWatts: 375}
	Dell1850 = ServerModel{Name: "Dell 1850", DiskSpeed: 220e3, MemSpeed: 1.2e6, Cores: 2, IdleWatts: 190, ActiveWatts: 290}
	SunX4100 = ServerModel{Name: "Sun X4100", DiskSpeed: 200e3, MemSpeed: 1.0e6, Cores: 2, IdleWatts: 180, ActiveWatts: 270}
)

// Models lists all profiles in a stable order.
func Models() []ServerModel { return []ServerModel{Dell1950, Dell2950, Dell1850, SunX4100} }

// HenFleet returns the per-node server models of an n-node testbed in
// the rough mix of the 50-server Hen deployment (§7.1): a majority of
// Dell 1950s with a tail of older, slower machines.
func HenFleet(n int, rng *rand.Rand) []ServerModel {
	out := make([]ServerModel, n)
	for i := range out {
		switch x := rng.Float64(); {
		case x < 0.55:
			out[i] = Dell1950
		case x < 0.70:
			out[i] = Dell2950
		case x < 0.85:
			out[i] = Dell1850
		default:
			out[i] = SunX4100
		}
	}
	return out
}

// UniformSpeeds returns n identical speeds (objects/s).
func UniformSpeeds(n int, speed float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = speed
	}
	return out
}

// LogNormalSpeeds returns n speeds with the given median and sigma of
// the underlying normal, modelling server heterogeneity (Fig 6.4 sweeps
// sigma).
func LogNormalSpeeds(n int, median, sigma float64, rng *rand.Rand) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = median * math.Exp(rng.NormFloat64()*sigma)
	}
	return out
}

// PerturbSpeeds returns a copy of speeds with multiplicative error of
// ±frac (uniform), modelling the speed-estimation error of Fig 6.5.
func PerturbSpeeds(speeds []float64, frac float64, rng *rand.Rand) []float64 {
	out := make([]float64, len(speeds))
	for i, s := range speeds {
		out[i] = s * (1 + (rng.Float64()*2-1)*frac)
		if out[i] <= 0 {
			out[i] = s * 0.01
		}
	}
	return out
}
