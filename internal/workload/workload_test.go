package workload

import (
	"math"
	"math/rand"
	"sort"
	"strconv"
	"testing"
)

func TestPoissonMeanRate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := NewPoisson(100, rng) // 100 events/s => mean gap 10ms
	var total float64
	const n = 20000
	for i := 0; i < n; i++ {
		total += p.NextSeconds()
	}
	mean := total / n
	if math.Abs(mean-0.01) > 0.001 {
		t.Errorf("mean gap = %v, want ~0.01", mean)
	}
}

func TestPoissonPanicsOnBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewPoisson(0) should panic")
		}
	}()
	NewPoisson(0, rand.New(rand.NewSource(1)))
}

func TestPoissonDurations(t *testing.T) {
	p := NewPoisson(1000, rand.New(rand.NewSource(2)))
	for i := 0; i < 100; i++ {
		if d := p.Next(); d < 0 {
			t.Fatalf("negative gap %v", d)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	z := NewZipf(1000, 1.2, rng)
	counts := make([]int, 1000)
	for i := 0; i < 100000; i++ {
		counts[z.Draw()]++
	}
	if counts[0] <= counts[500]*5 {
		t.Errorf("rank 0 (%d) should dominate rank 500 (%d)", counts[0], counts[500])
	}
}

func TestZipfLowExponentClamped(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	z := NewZipf(100, 0.5, rng) // must not panic despite s <= 1
	for i := 0; i < 100; i++ {
		if r := z.Draw(); r >= 100 {
			t.Fatalf("rank %d out of range", r)
		}
	}
}

func TestCorpusGenerate(t *testing.T) {
	c := NewCorpus(2000, 7)
	files := c.Generate(500)
	if len(files) != 500 {
		t.Fatalf("got %d files", len(files))
	}
	for i, f := range files {
		if f.Path == "" || f.Size <= 0 {
			t.Fatalf("file %d malformed: %+v", i, f)
		}
		if len(f.Keywords) < 5 || len(f.Keywords) > 50 {
			t.Fatalf("file %d keyword count %d out of [5,50]", i, len(f.Keywords))
		}
		seen := map[string]bool{}
		for _, k := range f.Keywords {
			if seen[k] {
				t.Fatalf("file %d has duplicate keyword %q", i, k)
			}
			seen[k] = true
		}
	}
}

func TestCorpusDeterminism(t *testing.T) {
	a := NewCorpus(1000, 42).Generate(50)
	b := NewCorpus(1000, 42).Generate(50)
	for i := range a {
		if a[i].Path != b[i].Path || a[i].Size != b[i].Size {
			t.Fatalf("corpus not deterministic at %d", i)
		}
	}
}

func TestRareWordIsFromTail(t *testing.T) {
	c := NewCorpus(100, 9)
	for i := 0; i < 50; i++ {
		w := c.RareWord() // words look like w00042
		idx, err := strconv.Atoi(w[1:])
		if err != nil {
			t.Fatalf("unexpected word %q: %v", w, err)
		}
		if idx < 50 {
			t.Fatalf("rare word %q from popular half", w)
		}
	}
}

func TestHenFleetMix(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	fleet := HenFleet(1000, rng)
	counts := map[string]int{}
	for _, m := range fleet {
		counts[m.Name]++
	}
	if counts["Dell 1950"] < 400 {
		t.Errorf("Dell 1950 should dominate the fleet, got %v", counts)
	}
	if len(counts) != 4 {
		t.Errorf("expected all 4 models present at n=1000, got %v", counts)
	}
}

func TestUniformSpeeds(t *testing.T) {
	s := UniformSpeeds(5, 100)
	for _, v := range s {
		if v != 100 {
			t.Fatal("uniform speeds must be equal")
		}
	}
}

func TestLogNormalSpeedsMedian(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	s := LogNormalSpeeds(10001, 1000, 0.5, rng)
	// Median of samples should be near the requested median.
	cp := append([]float64(nil), s...)
	sort.Float64s(cp)
	med := cp[len(cp)/2]
	if med < 900 || med > 1100 {
		t.Errorf("median = %v, want ~1000", med)
	}
	for _, v := range s {
		if v <= 0 {
			t.Fatal("speeds must be positive")
		}
	}
}

func TestPerturbSpeeds(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	base := UniformSpeeds(1000, 100)
	pert := PerturbSpeeds(base, 0.3, rng)
	for i, v := range pert {
		if v < 100*0.69 || v > 100*1.31 {
			t.Fatalf("perturbed speed %d = %v outside ±30%%", i, v)
		}
	}
	// Zero error must be the identity.
	same := PerturbSpeeds(base, 0, rng)
	for i, v := range same {
		if v != base[i] {
			t.Fatal("zero perturbation must not change speeds")
		}
	}
}

func TestQueryStreamRepeats(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	qs := NewQueryStream(10000, 1.0, rng)
	seen := map[uint64]bool{}
	repeats := 0
	const draws = 5000
	for i := 0; i < draws; i++ {
		r := qs.Next()
		if r >= 10000 {
			t.Fatalf("rank %d out of range", r)
		}
		if seen[r] {
			repeats++
		}
		seen[r] = true
	}
	// Zipf s=1.0 over 10k ranks repeats far more than uniform would
	// (~22% of 5k uniform draws); the cache-economics floor is ~30%.
	if frac := float64(repeats) / draws; frac < 0.3 {
		t.Errorf("repeat fraction %.2f, want >= 0.30 under Zipf s=1.0", frac)
	}
}

func TestTenantMixShares(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := NewTenantMix(11, 0.5, rng)
	counts := map[string]int{}
	const draws = 20000
	for i := 0; i < draws; i++ {
		counts[m.Next()]++
	}
	hot := float64(counts[m.Hot()]) / draws
	if hot < 0.45 || hot > 0.55 {
		t.Errorf("hot tenant share %.3f, want ~0.5", hot)
	}
	if len(counts) != 11 {
		t.Errorf("saw %d tenants, want 11", len(counts))
	}
	// Degenerate shapes stay valid.
	one := NewTenantMix(1, 0, rng)
	if one.Next() != one.Hot() {
		t.Error("single-tenant mix must always draw the hot tenant")
	}
}
