package wire

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestPoolDefaultsToSingleConn(t *testing.T) {
	c := NewClient("127.0.0.1:1")
	defer c.Close()
	if c.PoolSize() != 1 {
		t.Fatalf("default pool size = %d, want 1", c.PoolSize())
	}
	c2 := NewClientWithConfig("127.0.0.1:1", ClientConfig{PoolSize: -3})
	defer c2.Close()
	if c2.PoolSize() != 1 {
		t.Fatalf("negative pool size should normalise to 1, got %d", c2.PoolSize())
	}
}

func TestPoolLazyDial(t *testing.T) {
	_, addr := startEcho(t)
	c := NewClientWithConfig(addr, ClientConfig{PoolSize: 4})
	defer c.Close()
	if st := c.Stats(); st.Conns != 0 {
		t.Fatalf("no call yet, but %d conns open", st.Conns)
	}
	if err := c.Call(context.Background(), "echo", echoReq{Msg: "x"}, nil); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Conns != 1 {
		t.Fatalf("one call should open exactly one conn, got %d", st.Conns)
	}
}

func TestPoolStripesAcrossConns(t *testing.T) {
	s, addr := startEcho(t)
	c := NewClientWithConfig(addr, ClientConfig{PoolSize: 3})
	defer c.Close()
	for i := 0; i < 6; i++ {
		if err := c.Call(context.Background(), "echo", echoReq{Msg: "x"}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if st := c.Stats(); st.Conns != 3 {
		t.Fatalf("6 round-robin calls over pool of 3 should open 3 conns, got %d", st.Conns)
	}
	// The server must see the same number of distinct connections.
	s.mu.Lock()
	serverConns := len(s.conns)
	s.mu.Unlock()
	if serverConns != 3 {
		t.Fatalf("server sees %d conns, want 3", serverConns)
	}
}

func TestPoolConcurrentCalls(t *testing.T) {
	_, addr := startEcho(t)
	c := NewClientWithConfig(addr, ClientConfig{PoolSize: 4})
	defer c.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 128)
	for i := 0; i < 128; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var resp echoResp
			msg := fmt.Sprintf("m%d", i)
			if err := c.Call(context.Background(), "echo", echoReq{Msg: msg}, &resp); err != nil {
				errs <- err
				return
			}
			if resp.Msg != msg {
				errs <- fmt.Errorf("cross-talk: got %q want %q", resp.Msg, msg)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestPoolEvictsAndRedials: killing the server evicts every pooled
// connection; a restarted server on the same address is reachable again
// without constructing a new client.
func TestPoolEvictsAndRedials(t *testing.T) {
	s, addr := startEcho(t)
	c := NewClientWithConfig(addr, ClientConfig{PoolSize: 3})
	defer c.Close()
	for i := 0; i < 3; i++ {
		if err := c.Call(context.Background(), "echo", echoReq{Msg: "x"}, nil); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	// Wait for the read loops to observe the close and evict.
	deadline := time.Now().Add(2 * time.Second)
	for c.Stats().Conns != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("evictions never completed: %+v", c.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	d := NewDispatcher()
	d.Register("echo", func(ctx context.Context, method string, body Body) (interface{}, error) {
		return echoResp{Msg: "back"}, nil
	})
	s2, err := Serve(addr, d.Handle)
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	defer s2.Close()
	deadline = time.Now().Add(2 * time.Second)
	for {
		var resp echoResp
		err := c.Call(context.Background(), "echo", echoReq{Msg: "x"}, &resp)
		if err == nil && resp.Msg == "back" {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("pool never redialled: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestPoolCloseFailsCalls(t *testing.T) {
	_, addr := startEcho(t)
	c := NewClientWithConfig(addr, ClientConfig{PoolSize: 2})
	if err := c.Call(context.Background(), "echo", echoReq{Msg: "x"}, nil); err != nil {
		t.Fatal(err)
	}
	c.Close()
	if err := c.Call(context.Background(), "echo", echoReq{Msg: "y"}, nil); err == nil {
		t.Error("call on closed pooled client should fail")
	}
}

// TestDrainCloseLetsInFlightFinish: a drain must reject new calls
// immediately but let the call already on the wire complete, closing
// the pool as soon as it does — the view-driven pool retune path.
func TestDrainCloseLetsInFlightFinish(t *testing.T) {
	_, addr := startEcho(t)
	c := NewClientWithConfig(addr, ClientConfig{PoolSize: 2})

	res := make(chan error, 1)
	go func() {
		var resp echoResp
		res <- c.Call(context.Background(), "echo", echoReq{Msg: "slow", Sleep: 60}, &resp)
	}()
	// Wait until the slow call is actually in flight.
	for c.Stats().InFlight == 0 {
		time.Sleep(time.Millisecond)
	}

	start := time.Now()
	drained := c.DrainClose(2 * time.Second)
	if !drained {
		t.Fatal("drain timed out with a 60ms call and a 2s budget")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("drain waited %v; should close promptly after the call finished", elapsed)
	}
	if err := <-res; err != nil {
		t.Fatalf("in-flight call failed during drain: %v", err)
	}
	if err := c.Call(context.Background(), "echo", echoReq{Msg: "x"}, nil); err != ErrClosed {
		t.Fatalf("call after drain = %v, want ErrClosed", err)
	}
}

// TestDrainCloseTimeoutForcesClose: a call outliving the drain budget
// is cut off at the deadline rather than pinning the old pool forever.
func TestDrainCloseTimeoutForcesClose(t *testing.T) {
	_, addr := startEcho(t)
	c := NewClientWithConfig(addr, ClientConfig{PoolSize: 1})

	res := make(chan error, 1)
	go func() {
		res <- c.Call(context.Background(), "echo", echoReq{Msg: "stuck", Sleep: 2000}, nil)
	}()
	for c.Stats().InFlight == 0 {
		time.Sleep(time.Millisecond)
	}
	if drained := c.DrainClose(30 * time.Millisecond); drained {
		t.Fatal("drain reported success around a 2s call")
	}
	if err := <-res; err == nil {
		t.Fatal("call surviving past the drain deadline should have failed")
	}
}
