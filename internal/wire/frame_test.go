package wire

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"testing"
	"testing/quick"
)

// TestFrameRoundTripQuick: any frame content survives write/read.
func TestFrameRoundTripQuick(t *testing.T) {
	f := func(id uint64, typ string, errStr string, body []byte) bool {
		in := frame{ID: id, Type: typ, Err: errStr}
		if body != nil {
			b, err := json.Marshal(string(body))
			if err != nil {
				return true
			}
			in.Body = b
		}
		var buf bytes.Buffer
		if err := writeFrame(&buf, &in); err != nil {
			return false
		}
		out, err := readFrame(&buf)
		if err != nil {
			return false
		}
		return out.ID == in.ID && out.Type == in.Type && out.Err == in.Err &&
			bytes.Equal(out.Body, in.Body)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestReadFrameRejectsOversize(t *testing.T) {
	var buf bytes.Buffer
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MaxFrame+1)
	buf.Write(hdr[:])
	if _, err := readFrame(&buf); err == nil {
		t.Error("oversize frame must be rejected before allocation")
	}
}

func TestReadFrameTruncated(t *testing.T) {
	var buf bytes.Buffer
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 100)
	buf.Write(hdr[:])
	buf.WriteString("short")
	if _, err := readFrame(&buf); err == nil {
		t.Error("truncated body must error")
	}
}

func TestReadFrameGarbageJSON(t *testing.T) {
	var buf bytes.Buffer
	body := []byte("{not json")
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	buf.Write(hdr[:])
	buf.Write(body)
	if _, err := readFrame(&buf); err == nil {
		t.Error("garbage JSON must error")
	}
}
