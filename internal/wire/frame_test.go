package wire

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"testing"
	"testing/quick"
)

// TestFrameRoundTripQuick: any frame content survives write/read in
// both framings.
func TestFrameRoundTripQuick(t *testing.T) {
	f := func(id uint64, typ string, errStr string, body []byte) bool {
		for _, binMode := range []bool{false, true} {
			in := frame{ID: id, codec: codecJSON}
			if typ != "" {
				in.kind = kindRequest
				in.Type = typ
			} else {
				in.kind = kindResponse
				in.Err = errStr
			}
			if body != nil {
				b, err := json.Marshal(string(body))
				if err != nil {
					continue
				}
				in.Body = b
			}
			if !binMode && in.Type == cancelMethod {
				continue // JSON framing reserves the cancel method name
			}
			var buf bytes.Buffer
			if err := writeFrame(&buf, &in, binMode); err != nil {
				return false
			}
			out, err := readFrame(&buf, binMode)
			if err != nil {
				return false
			}
			ok := out.ID == in.ID && out.Type == in.Type && out.Err == in.Err &&
				out.kind == in.kind && bytes.Equal(out.Body, in.Body)
			out.release()
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestBinaryFrameBinaryBody: the binary envelope carries binary-codec
// bodies byte-for-byte.
func TestBinaryFrameBinaryBody(t *testing.T) {
	payload := []byte{0x00, 0xff, 0x80, 0x01, 0x02}
	in := frame{ID: 7, kind: kindRequest, Type: "node.query", codec: codecBinary, Body: payload}
	var buf bytes.Buffer
	if err := writeFrame(&buf, &in, true); err != nil {
		t.Fatal(err)
	}
	out, err := readFrame(&buf, true)
	if err != nil {
		t.Fatal(err)
	}
	defer out.release()
	if out.codec != codecBinary || !bytes.Equal(out.Body, payload) {
		t.Fatalf("binary body mangled: codec=%d body=%x", out.codec, out.Body)
	}
}

// TestBinaryCancelFrame: cancel frames carry only the id.
func TestBinaryCancelFrame(t *testing.T) {
	in := frame{ID: 42, kind: kindCancel, Type: cancelMethod}
	var buf bytes.Buffer
	if err := writeFrame(&buf, &in, true); err != nil {
		t.Fatal(err)
	}
	if buf.Len() > 4+1+2 {
		t.Fatalf("cancel frame is %d bytes, want <= 7", buf.Len())
	}
	out, err := readFrame(&buf, true)
	if err != nil {
		t.Fatal(err)
	}
	defer out.release()
	if !out.isCancel() || out.ID != 42 {
		t.Fatalf("cancel frame decoded as kind=%d id=%d", out.kind, out.ID)
	}
}

func TestReadFrameRejectsOversize(t *testing.T) {
	for _, binMode := range []bool{false, true} {
		var buf bytes.Buffer
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], MaxFrame+1)
		buf.Write(hdr[:])
		if _, err := readFrame(&buf, binMode); err == nil {
			t.Errorf("binMode=%v: oversize frame must be rejected before allocation", binMode)
		}
	}
}

func TestReadFrameTruncated(t *testing.T) {
	for _, binMode := range []bool{false, true} {
		var buf bytes.Buffer
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], 100)
		buf.Write(hdr[:])
		buf.WriteString("short")
		if _, err := readFrame(&buf, binMode); err == nil {
			t.Errorf("binMode=%v: truncated body must error", binMode)
		}
	}
}

func TestReadFrameGarbageJSON(t *testing.T) {
	var buf bytes.Buffer
	body := []byte("{not json")
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	buf.Write(hdr[:])
	buf.Write(body)
	if _, err := readFrame(&buf, false); err == nil {
		t.Error("garbage JSON must error")
	}
}

// FuzzDecodeBinaryFrame: arbitrary bytes never panic the binary
// envelope parser, and valid frames survive a re-encode round trip.
func FuzzDecodeBinaryFrame(f *testing.F) {
	seed := frame{ID: 9, kind: kindRequest, Type: "node.query", codec: codecBinary, Body: []byte{1, 2, 3}}
	var buf bytes.Buffer
	if err := writeFrame(&buf, &seed, true); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes()[4:]) // envelope without the length prefix
	f.Add([]byte{})
	f.Add([]byte{kindCancel, 0x01})
	f.Add([]byte{kindResponse, 0x00, 0x00, codecJSON})
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := decodeBinaryFrame(data)
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := writeFrame(&out, fr, true); err != nil {
			t.Fatalf("valid frame failed to re-encode: %v", err)
		}
		back, err := readFrame(&out, true)
		if err != nil {
			t.Fatalf("re-encoded frame failed to parse: %v", err)
		}
		if back.ID != fr.ID || back.kind != fr.kind || back.Type != fr.Type ||
			back.Err != fr.Err || !bytes.Equal(back.Body, fr.Body) {
			t.Fatal("binary frame round trip diverged")
		}
		back.release()
	})
}
