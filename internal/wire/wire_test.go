package wire

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

type echoReq struct {
	Msg   string `json:"msg"`
	Sleep int    `json:"sleep_ms"`
}

type echoResp struct {
	Msg string `json:"msg"`
}

func startEcho(t *testing.T) (*Server, string) {
	t.Helper()
	d := NewDispatcher()
	d.Register("echo", func(ctx context.Context, method string, body Body) (interface{}, error) {
		var req echoReq
		if err := body.Decode(&req); err != nil {
			return nil, err
		}
		if req.Sleep > 0 {
			time.Sleep(time.Duration(req.Sleep) * time.Millisecond)
		}
		return echoResp{Msg: req.Msg}, nil
	})
	d.Register("fail", func(ctx context.Context, method string, body Body) (interface{}, error) {
		return nil, fmt.Errorf("deliberate failure")
	})
	s, err := Serve("127.0.0.1:0", d.Handle)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, s.Addr()
}

func TestCallRoundTrip(t *testing.T) {
	_, addr := startEcho(t)
	c := NewClient(addr)
	defer c.Close()
	var resp echoResp
	if err := c.Call(context.Background(), "echo", echoReq{Msg: "hello"}, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Msg != "hello" {
		t.Errorf("echo = %q", resp.Msg)
	}
}

func TestCallError(t *testing.T) {
	_, addr := startEcho(t)
	c := NewClient(addr)
	defer c.Close()
	err := c.Call(context.Background(), "fail", nil, nil)
	if err == nil {
		t.Fatal("expected handler error")
	}
}

func TestUnknownMethod(t *testing.T) {
	_, addr := startEcho(t)
	c := NewClient(addr)
	defer c.Close()
	if err := c.Call(context.Background(), "nope", nil, nil); err == nil {
		t.Fatal("unknown method should error")
	}
}

// TestRemoteErrorCodeRoundTrip: errors a handler reports with a
// WireErrorCode cross the wire typed — the client surfaces a
// *RemoteError carrying the code, so callers classify by evidence
// instead of matching error prose. Plain handler errors arrive as
// RemoteError with no code; the historic text is preserved either way.
func TestRemoteErrorCodeRoundTrip(t *testing.T) {
	_, addr := startEcho(t)
	c := NewClient(addr)
	defer c.Close()

	err := c.Call(context.Background(), "nope", nil, nil)
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("unknown method error is not a RemoteError: %v", err)
	}
	if re.Code != CodeUnknownMethod {
		t.Errorf("code = %q, want %q", re.Code, CodeUnknownMethod)
	}
	if re.Method != "nope" {
		t.Errorf("method = %q, want nope", re.Method)
	}
	if want := `wire: nope: wire: unknown method "nope"`; err.Error() != want {
		t.Errorf("error text changed: %q, want %q", err.Error(), want)
	}

	err = c.Call(context.Background(), "fail", nil, nil)
	if !errors.As(err, &re) {
		t.Fatalf("handler error is not a RemoteError: %v", err)
	}
	if re.Code != "" {
		t.Errorf("uncoded handler error grew a code %q", re.Code)
	}
	if re.Msg != "deliberate failure" {
		t.Errorf("msg = %q", re.Msg)
	}
}

func TestConcurrentCalls(t *testing.T) {
	_, addr := startEcho(t)
	c := NewClient(addr)
	defer c.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var resp echoResp
			msg := fmt.Sprintf("m%d", i)
			if err := c.Call(context.Background(), "echo", echoReq{Msg: msg}, &resp); err != nil {
				errs <- err
				return
			}
			if resp.Msg != msg {
				errs <- fmt.Errorf("cross-talk: got %q want %q", resp.Msg, msg)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestNoHeadOfLineBlocking: a slow request must not delay a fast one on
// the same connection — the §4.8.4 requirement the multiplexing design
// addresses.
func TestNoHeadOfLineBlocking(t *testing.T) {
	_, addr := startEcho(t)
	c := NewClient(addr)
	defer c.Close()
	slow := make(chan error, 1)
	go func() {
		slow <- c.Call(context.Background(), "echo", echoReq{Msg: "slow", Sleep: 300}, nil)
	}()
	time.Sleep(20 * time.Millisecond) // let the slow call get on the wire
	start := time.Now()
	if err := c.Call(context.Background(), "echo", echoReq{Msg: "fast"}, nil); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > 150*time.Millisecond {
		t.Errorf("fast call took %v behind a slow one; head-of-line blocked", d)
	}
	if err := <-slow; err != nil {
		t.Fatal(err)
	}
}

func TestCallTimeout(t *testing.T) {
	_, addr := startEcho(t)
	c := NewClient(addr)
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	err := c.Call(ctx, "echo", echoReq{Msg: "x", Sleep: 500}, nil)
	if err == nil {
		t.Fatal("expected deadline exceeded")
	}
	// The connection must survive: a subsequent call works.
	var resp echoResp
	if err := c.Call(context.Background(), "echo", echoReq{Msg: "after"}, &resp); err != nil {
		t.Fatalf("connection unusable after timeout: %v", err)
	}
}

func TestServerClose(t *testing.T) {
	s, addr := startEcho(t)
	c := NewClient(addr)
	defer c.Close()
	if err := c.Call(context.Background(), "echo", echoReq{Msg: "x"}, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal("double close should be nil")
	}
	if err := c.Call(context.Background(), "echo", echoReq{Msg: "x"}, nil); err == nil {
		t.Error("call after server close should fail")
	}
}

func TestClientClose(t *testing.T) {
	_, addr := startEcho(t)
	c := NewClient(addr)
	if err := c.Call(context.Background(), "echo", echoReq{Msg: "x"}, nil); err != nil {
		t.Fatal(err)
	}
	c.Close()
	if err := c.Call(context.Background(), "echo", echoReq{Msg: "y"}, nil); err == nil {
		t.Error("call on closed client should fail")
	}
}

func TestClientRedial(t *testing.T) {
	s, addr := startEcho(t)
	c := NewClient(addr)
	defer c.Close()
	if err := c.Call(context.Background(), "echo", echoReq{Msg: "x"}, nil); err != nil {
		t.Fatal(err)
	}
	// Kill the server-side connections; the client should redial on the
	// next call against a new server on the same address.
	s.Close()
	d := NewDispatcher()
	d.Register("echo", func(ctx context.Context, method string, body Body) (interface{}, error) {
		return echoResp{Msg: "redialled"}, nil
	})
	s2, err := Serve(addr, d.Handle)
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	defer s2.Close()
	deadline := time.Now().Add(2 * time.Second)
	for {
		var resp echoResp
		err := c.Call(context.Background(), "echo", echoReq{Msg: "x"}, &resp)
		if err == nil && resp.Msg == "redialled" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("redial never succeeded: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestBadFrameRejected(t *testing.T) {
	f := frame{Type: "x", kind: kindRequest, codec: codecJSON, Body: []byte(`""`)}
	if err := writeFrame(discard{}, &f, false); err != nil {
		t.Fatalf("small frame should write: %v", err)
	}
	if err := writeFrame(discard{}, &f, true); err != nil {
		t.Fatalf("small binary frame should write: %v", err)
	}
	// The write-side MaxFrame check must fail locally, in both framings,
	// before a byte reaches the (possibly remote) peer.
	big := frame{Type: "x", kind: kindRequest, codec: codecBinary, Body: make([]byte, MaxFrame+1)}
	if err := writeFrame(discard{}, &big, true); err == nil {
		t.Fatal("oversize binary frame must be rejected on write")
	}
	big.codec = codecJSON
	payload := make([]byte, MaxFrame+2)
	for i := range payload {
		payload[i] = 'a'
	}
	payload[0], payload[len(payload)-1] = '"', '"' // one giant valid JSON string
	big.Body = payload
	if err := writeFrame(discard{}, &big, false); err == nil {
		t.Fatal("oversize JSON frame must be rejected on write")
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// TestCancelPropagatesToServer pins the hedge-loss path: when a caller
// abandons a Call (context cancelled), the server-side handler's context
// is cancelled too, instead of the handler running to completion for an
// answer nobody is waiting on.
func TestCancelPropagatesToServer(t *testing.T) {
	started := make(chan struct{}, 1)
	aborted := make(chan struct{}, 1)
	d := NewDispatcher()
	d.Register("block", func(ctx context.Context, _ string, _ Body) (interface{}, error) {
		started <- struct{}{}
		select {
		case <-ctx.Done():
			aborted <- struct{}{}
			return nil, ctx.Err()
		case <-time.After(5 * time.Second):
			return nil, fmt.Errorf("handler never cancelled")
		}
	})
	s, err := Serve("127.0.0.1:0", d.Handle)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c := NewClient(s.Addr())
	defer c.Close()

	ctx, cancel := context.WithCancel(context.Background())
	callErr := make(chan error, 1)
	go func() { callErr <- c.Call(ctx, "block", nil, nil) }()
	select {
	case <-started:
	case <-time.After(2 * time.Second):
		t.Fatal("handler never started")
	}
	cancel()
	if err := <-callErr; err != context.Canceled {
		t.Fatalf("Call returned %v, want context.Canceled", err)
	}
	select {
	case <-aborted:
	case <-time.After(2 * time.Second):
		t.Fatal("server handler context was never cancelled")
	}
	// The connection must survive the cancellation for subsequent calls.
	var resp echoResp
	d.Register("echo", func(_ context.Context, _ string, body Body) (interface{}, error) {
		var req echoReq
		if err := body.Decode(&req); err != nil {
			return nil, err
		}
		return echoResp{Msg: req.Msg}, nil
	})
	if err := c.Call(context.Background(), "echo", echoReq{Msg: "still-alive"}, &resp); err != nil {
		t.Fatalf("call after cancel: %v", err)
	}
	if resp.Msg != "still-alive" {
		t.Errorf("echo after cancel = %q", resp.Msg)
	}
}
