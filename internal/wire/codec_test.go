package wire

import (
	"context"
	"encoding/binary"
	"fmt"
	"sync"
	"testing"
)

// binBody is a test body speaking the binary codec: a counter plus a
// blob, enough to prove raw bytes survive.
type binBody struct {
	N    uint64 `json:"n"`
	Blob []byte `json:"blob"`
}

func (b binBody) AppendWire(buf []byte) []byte {
	buf = binary.AppendUvarint(buf, b.N)
	buf = binary.AppendUvarint(buf, uint64(len(b.Blob)))
	return append(buf, b.Blob...)
}

func (b *binBody) DecodeWire(data []byte) error {
	v, n := binary.Uvarint(data)
	if n <= 0 {
		return fmt.Errorf("bad N")
	}
	b.N = v
	data = data[n:]
	l, n := binary.Uvarint(data)
	if n <= 0 || uint64(len(data)-n) < l {
		return fmt.Errorf("bad blob")
	}
	b.Blob = append([]byte(nil), data[n:n+int(l)]...)
	return nil
}

// startBinEcho serves an echo handler that reports which codec each
// request body arrived in.
func startBinEcho(t *testing.T, cfg ServerConfig) (*Server, *int, *sync.Mutex) {
	t.Helper()
	var mu sync.Mutex
	binSeen := 0
	d := NewDispatcher()
	d.Register("echo", func(_ context.Context, _ string, body Body) (interface{}, error) {
		var req binBody
		if err := body.Decode(&req); err != nil {
			return nil, err
		}
		mu.Lock()
		if body.codec == codecBinary {
			binSeen++
		}
		mu.Unlock()
		return req, nil
	})
	s, err := ServeWithConfig("127.0.0.1:0", d.Handle, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, &binSeen, &mu
}

func echoOnce(t *testing.T, c *Client, n uint64) {
	t.Helper()
	req := binBody{N: n, Blob: []byte{0x00, 0xff, 0x10, 0x20}}
	var resp binBody
	if err := c.Call(context.Background(), "echo", req, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.N != req.N || string(resp.Blob) != string(req.Blob) {
		t.Fatalf("echo mangled: %+v != %+v", resp, req)
	}
}

// TestNegotiatedBinaryFraming: a default client against a default
// server upgrades to binary framing and ships bodies in the binary
// codec both ways.
func TestNegotiatedBinaryFraming(t *testing.T) {
	s, binSeen, mu := startBinEcho(t, ServerConfig{})
	cl := NewClient(s.Addr())
	defer cl.Close()
	echoOnce(t, cl, 7)
	if st := cl.Stats(); st.Binary != st.Conns || st.Conns == 0 {
		t.Fatalf("expected all conns binary, got %+v", st)
	}
	mu.Lock()
	defer mu.Unlock()
	if *binSeen == 0 {
		t.Fatal("server never saw a binary-codec body")
	}
}

// TestMixedVersionJSONServer: a binary-capable client against a server
// that predates the handshake (simulated by DisableBinary, which routes
// wire.hello to the dispatcher's unknown-method error exactly like an
// old build) silently stays on JSON framing and still interoperates.
func TestMixedVersionJSONServer(t *testing.T) {
	s, binSeen, mu := startBinEcho(t, ServerConfig{DisableBinary: true})
	cl := NewClient(s.Addr())
	defer cl.Close()
	echoOnce(t, cl, 11)
	if st := cl.Stats(); st.Binary != 0 {
		t.Fatalf("conns negotiated binary against a JSON-only server: %+v", st)
	}
	mu.Lock()
	defer mu.Unlock()
	if *binSeen != 0 {
		t.Fatal("JSON-only server somehow received a binary body")
	}
}

// TestMixedVersionJSONClient: an old client (DisableBinary: no
// handshake) against a new server speaks JSON end to end.
func TestMixedVersionJSONClient(t *testing.T) {
	s, binSeen, mu := startBinEcho(t, ServerConfig{})
	cl := NewClientWithConfig(s.Addr(), ClientConfig{DisableBinary: true})
	defer cl.Close()
	echoOnce(t, cl, 13)
	mu.Lock()
	defer mu.Unlock()
	if *binSeen != 0 {
		t.Fatal("non-negotiating client's body arrived binary")
	}
}

// TestBinaryFramingConcurrent: the upgraded connection multiplexes
// concurrent binary calls without cross-talk.
func TestBinaryFramingConcurrent(t *testing.T) {
	s, _, _ := startBinEcho(t, ServerConfig{})
	cl := NewClientWithConfig(s.Addr(), ClientConfig{PoolSize: 2})
	defer cl.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := binBody{N: uint64(i), Blob: []byte{byte(i), byte(i >> 4)}}
			var resp binBody
			if err := cl.Call(context.Background(), "echo", req, &resp); err != nil {
				errs <- err
				return
			}
			if resp.N != uint64(i) {
				errs <- fmt.Errorf("cross-talk: got %d want %d", resp.N, i)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestJSONFallbackBodyOnBinaryConn: a body that does not implement the
// binary codec rides as JSON inside the binary envelope.
func TestJSONFallbackBodyOnBinaryConn(t *testing.T) {
	type plain struct {
		Msg string `json:"msg"`
	}
	d := NewDispatcher()
	d.Register("plain", func(_ context.Context, _ string, body Body) (interface{}, error) {
		var req plain
		if err := body.Decode(&req); err != nil {
			return nil, err
		}
		return plain{Msg: req.Msg + "!"}, nil
	})
	s, err := Serve("127.0.0.1:0", d.Handle)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	cl := NewClient(s.Addr())
	defer cl.Close()
	var resp plain
	if err := cl.Call(context.Background(), "plain", plain{Msg: "ctrl"}, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Msg != "ctrl!" {
		t.Fatalf("control body mangled: %q", resp.Msg)
	}
	if st := cl.Stats(); st.Binary == 0 {
		t.Fatal("connection should still have negotiated binary framing")
	}
}
