// Package wire is the RPC substrate of the ROAR cluster: length-prefixed
// JSON messages over TCP, with request/response multiplexing across a
// small pool of connections per peer pair.
//
// §4.8.4 discusses the transport choice: TCP for reliability, with the
// observation that data-center RPCs are application-limited and must not
// head-of-line block the scheduler. We multiplex concurrent requests by
// id (so one slow response never blocks dispatching new sub-queries),
// stripe calls round-robin across the pool so request writes are not
// serialised behind one mutex at high concurrency, and give every call
// its own deadline; a timed-out call returns promptly to the caller
// while its connection survives. An abandoned call (deadline, or a
// hedged request that lost its race) additionally sends an in-band
// cancel frame so the server stops the handler instead of computing an
// answer nobody will read. A connection that errors is evicted from the
// pool and lazily redialled.
package wire

import (
	"bufio"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// MaxFrame bounds a single message (16 MiB) to fail fast on corruption.
const MaxFrame = 16 << 20

// cancelMethod is the reserved in-band control method a client sends
// when it abandons a call (deadline, or a hedged request lost the
// race). The frame's ID names the request to cancel; the server cancels
// that request's context and sends no response. Handlers that honour
// their context (the node's matcher does) stop wasting work on answers
// nobody is waiting for.
const cancelMethod = "wire.cancel"

// frame is the on-the-wire envelope.
type frame struct {
	ID   uint64          `json:"id"`             // request id (response echoes it)
	Type string          `json:"type"`           // method name; empty on responses
	Err  string          `json:"err,omitempty"`  // error text on responses
	Body json.RawMessage `json:"body,omitempty"` // method-specific payload
}

func writeFrame(w io.Writer, f *frame) error {
	body, err := json.Marshal(f)
	if err != nil {
		return fmt.Errorf("wire: encoding frame: %w", err)
	}
	if len(body) > MaxFrame {
		return fmt.Errorf("wire: frame of %d bytes exceeds limit", len(body))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(body)
	return err
}

func readFrame(r io.Reader) (*frame, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, fmt.Errorf("wire: frame of %d bytes exceeds limit", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	var f frame
	if err := json.Unmarshal(body, &f); err != nil {
		return nil, fmt.Errorf("wire: decoding frame: %w", err)
	}
	return &f, nil
}

// Handler serves one request. Returning an error sends it to the caller
// as a call failure; the connection stays up.
type Handler func(ctx context.Context, method string, body json.RawMessage) (interface{}, error)

// Server accepts connections and dispatches requests to a Handler.
// Requests on one connection are served concurrently, matching the
// node's need to overlap long matching work with management traffic.
type Server struct {
	ln      net.Listener
	handler Handler

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// Serve starts a server on addr ("127.0.0.1:0" for an ephemeral port).
func Serve(addr string, h Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: listen %s: %w", addr, err)
	}
	s := &Server{ln: ln, handler: h, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops accepting and closes all live connections.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	err := s.ln.Close()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	br := bufio.NewReaderSize(conn, 64<<10)
	var wmu sync.Mutex // serialises response frames
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// In-progress requests on this connection, so a cancel frame can
	// abort the matching handler's context mid-flight.
	var rmu sync.Mutex
	running := make(map[uint64]context.CancelFunc)
	for {
		f, err := readFrame(br)
		if err != nil {
			return
		}
		if f.Type == cancelMethod {
			rmu.Lock()
			if abort, ok := running[f.ID]; ok {
				abort()
			}
			rmu.Unlock()
			continue // control frame: no handler, no response
		}
		rctx, rcancel := context.WithCancel(ctx)
		rmu.Lock()
		running[f.ID] = rcancel
		rmu.Unlock()
		go func(req *frame, rctx context.Context, rcancel context.CancelFunc) {
			defer func() {
				rmu.Lock()
				delete(running, req.ID)
				rmu.Unlock()
				rcancel()
			}()
			resp := frame{ID: req.ID}
			out, err := s.handler(rctx, req.Type, req.Body)
			if err != nil {
				resp.Err = err.Error()
			} else if out != nil {
				b, err := json.Marshal(out)
				if err != nil {
					resp.Err = fmt.Sprintf("wire: encoding response: %v", err)
				} else {
					resp.Body = b
				}
			}
			wmu.Lock()
			defer wmu.Unlock()
			_ = writeFrame(conn, &resp)
		}(f, rctx, rcancel)
	}
}

// ClientConfig tunes a client's connection pool.
type ClientConfig struct {
	// PoolSize is the number of TCP connections calls are striped
	// across (default 1). One multiplexed connection is correct but
	// serialises all request writes behind a single mutex and a single
	// kernel send buffer; a pool removes that bottleneck under high
	// frontend concurrency.
	PoolSize int
	// DialTimeout bounds each connection attempt. Default 5s.
	DialTimeout time.Duration
}

func (cfg ClientConfig) withDefaults() ClientConfig {
	if cfg.PoolSize <= 0 {
		cfg.PoolSize = 1
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 5 * time.Second
	}
	return cfg
}

// Client is a pooled, multiplexing RPC client for one remote server.
// Safe for concurrent use. Calls are striped round-robin across up to
// PoolSize connections, each dialled lazily on first use; every
// connection multiplexes many in-flight requests by id. A connection
// that fails (dial, write, or read error) is evicted from the pool and
// redialled on the next call that lands on its slot.
type Client struct {
	addr   string
	cfg    ClientConfig
	nextID atomic.Uint64 // request ids, shared across the pool
	rr     atomic.Uint64 // round-robin cursor
	closed atomic.Bool
	slots  []*slot
}

// slot is one pool position. Each slot has its own lock so a slow dial
// on an empty slot never blocks calls striped to the healthy
// connections of the other slots.
type slot struct {
	mu sync.Mutex
	cc *clientConn
}

// clientConn is one pooled connection with its own in-flight table.
type clientConn struct {
	conn net.Conn
	wmu  sync.Mutex // serialises request frames on this connection

	pmu      sync.Mutex
	pending  map[uint64]chan *frame
	inflight atomic.Int64
	broken   atomic.Bool
}

// ErrClosed is returned by calls on a closed client.
var ErrClosed = errors.New("wire: client closed")

// NewClient returns a lazy single-connection client; the connection
// opens on first Call.
func NewClient(addr string) *Client {
	return NewClientWithConfig(addr, ClientConfig{})
}

// NewClientWithConfig returns a lazy pooled client.
func NewClientWithConfig(addr string, cfg ClientConfig) *Client {
	cfg = cfg.withDefaults()
	c := &Client{addr: addr, cfg: cfg, slots: make([]*slot, cfg.PoolSize)}
	for i := range c.slots {
		c.slots[i] = &slot{}
	}
	return c
}

// PoolSize reports the configured pool width.
func (c *Client) PoolSize() int { return c.cfg.PoolSize }

// ClientStats is a point-in-time pool snapshot.
type ClientStats struct {
	Conns    int // healthy dialled connections
	InFlight int // requests awaiting a response
}

// Stats snapshots the pool.
func (c *Client) Stats() ClientStats {
	var st ClientStats
	for _, s := range c.slots {
		s.mu.Lock()
		if s.cc != nil {
			st.Conns++
			st.InFlight += int(s.cc.inflight.Load())
		}
		s.mu.Unlock()
	}
	return st
}

// Close tears all connections down; in-flight calls fail.
func (c *Client) Close() error {
	c.closed.Store(true)
	var err error
	for _, s := range c.slots {
		s.mu.Lock()
		if s.cc != nil {
			if e := s.cc.conn.Close(); err == nil {
				err = e
			}
			s.cc = nil
		}
		s.mu.Unlock()
	}
	return err
}

// conn returns the healthy connection for pool index i, dialling if the
// slot is empty (lazy dial, and redial after eviction). Only the slot's
// own lock is held across the dial, so a dead slot cannot stall calls
// on its healthy neighbours.
func (c *Client) conn(i int) (*clientConn, error) {
	s := c.slots[i]
	s.mu.Lock()
	defer s.mu.Unlock()
	if c.closed.Load() {
		return nil, ErrClosed
	}
	if s.cc != nil {
		return s.cc, nil
	}
	conn, err := net.DialTimeout("tcp", c.addr, c.cfg.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("wire: dial %s: %w", c.addr, err)
	}
	if c.closed.Load() {
		conn.Close()
		return nil, ErrClosed
	}
	cc := &clientConn{conn: conn, pending: make(map[uint64]chan *frame)}
	s.cc = cc
	go c.readLoop(i, cc)
	return cc, nil
}

// evict removes a failed connection from the pool (health-aware
// eviction: any transport error disqualifies the connection; the slot
// redials on next use) and fails its in-flight calls.
func (c *Client) evict(i int, cc *clientConn, cause error) {
	if cc.broken.Swap(true) {
		return // already evicted
	}
	s := c.slots[i]
	s.mu.Lock()
	if s.cc == cc {
		s.cc = nil
	}
	s.mu.Unlock()
	cc.conn.Close()
	cc.pmu.Lock()
	defer cc.pmu.Unlock()
	for id, ch := range cc.pending {
		ch <- &frame{ID: id, Err: fmt.Sprintf("wire: connection lost: %v", cause)}
		delete(cc.pending, id)
	}
}

func (c *Client) readLoop(i int, cc *clientConn) {
	br := bufio.NewReaderSize(cc.conn, 64<<10)
	for {
		f, err := readFrame(br)
		if err != nil {
			c.evict(i, cc, err)
			return
		}
		cc.pmu.Lock()
		ch := cc.pending[f.ID]
		delete(cc.pending, f.ID)
		cc.pmu.Unlock()
		if ch != nil {
			ch <- f
		}
	}
}

// Call sends a request on the next pooled connection and decodes the
// response into out (which may be nil to discard). It honours ctx
// cancellation/deadline without tearing down the shared connection.
func (c *Client) Call(ctx context.Context, method string, in, out interface{}) error {
	i := int(c.rr.Add(1)-1) % len(c.slots)
	cc, err := c.conn(i)
	if err != nil {
		return err
	}
	id := c.nextID.Add(1)
	req := frame{ID: id, Type: method}
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("wire: encoding %s request: %w", method, err)
		}
		req.Body = b
	}
	ch := make(chan *frame, 1)
	cc.pmu.Lock()
	cc.pending[id] = ch
	cc.pmu.Unlock()
	cc.inflight.Add(1)
	defer cc.inflight.Add(-1)

	cc.wmu.Lock()
	werr := writeFrame(cc.conn, &req)
	cc.wmu.Unlock()
	if werr != nil {
		cc.pmu.Lock()
		delete(cc.pending, id)
		cc.pmu.Unlock()
		c.evict(i, cc, werr)
		return fmt.Errorf("wire: sending %s: %w", method, werr)
	}

	select {
	case <-ctx.Done():
		cc.pmu.Lock()
		delete(cc.pending, id)
		cc.pmu.Unlock()
		// Tell the server the answer is unwanted (hedge loss, deadline)
		// so it can stop the handler. Best effort: a write failure here
		// just means the connection is already dying.
		cancelFrame := frame{ID: id, Type: cancelMethod}
		cc.wmu.Lock()
		_ = writeFrame(cc.conn, &cancelFrame)
		cc.wmu.Unlock()
		return ctx.Err()
	case f := <-ch:
		if f.Err != "" {
			return fmt.Errorf("wire: %s: %s", method, f.Err)
		}
		if out != nil && len(f.Body) > 0 {
			if err := json.Unmarshal(f.Body, out); err != nil {
				return fmt.Errorf("wire: decoding %s response: %w", method, err)
			}
		}
		return nil
	}
}

// Dispatcher routes methods to typed handlers; a convenience for
// building servers.
type Dispatcher struct {
	mu       sync.RWMutex
	handlers map[string]Handler
}

// NewDispatcher returns an empty dispatcher.
func NewDispatcher() *Dispatcher {
	return &Dispatcher{handlers: make(map[string]Handler)}
}

// Register installs a handler for a method name.
func (d *Dispatcher) Register(method string, h Handler) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.handlers[method] = h
}

// Handle implements the server Handler signature.
func (d *Dispatcher) Handle(ctx context.Context, method string, body json.RawMessage) (interface{}, error) {
	d.mu.RLock()
	h, ok := d.handlers[method]
	d.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("wire: unknown method %q", method)
	}
	return h(ctx, method, body)
}
