// Package wire is the RPC substrate of the ROAR cluster: length-prefixed
// JSON messages over TCP, with request/response multiplexing on a single
// connection per peer pair.
//
// §4.8.4 discusses the transport choice: TCP for reliability, with the
// observation that data-center RPCs are application-limited and must not
// head-of-line block the scheduler. We multiplex concurrent requests by
// id on one connection (so one slow response never blocks dispatching
// new sub-queries) and give every call its own deadline; a timed-out
// call returns promptly to the caller while the connection survives.
package wire

import (
	"bufio"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// MaxFrame bounds a single message (16 MiB) to fail fast on corruption.
const MaxFrame = 16 << 20

// frame is the on-the-wire envelope.
type frame struct {
	ID   uint64          `json:"id"`             // request id (response echoes it)
	Type string          `json:"type"`           // method name; empty on responses
	Err  string          `json:"err,omitempty"`  // error text on responses
	Body json.RawMessage `json:"body,omitempty"` // method-specific payload
}

func writeFrame(w io.Writer, f *frame) error {
	body, err := json.Marshal(f)
	if err != nil {
		return fmt.Errorf("wire: encoding frame: %w", err)
	}
	if len(body) > MaxFrame {
		return fmt.Errorf("wire: frame of %d bytes exceeds limit", len(body))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(body)
	return err
}

func readFrame(r io.Reader) (*frame, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, fmt.Errorf("wire: frame of %d bytes exceeds limit", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	var f frame
	if err := json.Unmarshal(body, &f); err != nil {
		return nil, fmt.Errorf("wire: decoding frame: %w", err)
	}
	return &f, nil
}

// Handler serves one request. Returning an error sends it to the caller
// as a call failure; the connection stays up.
type Handler func(ctx context.Context, method string, body json.RawMessage) (interface{}, error)

// Server accepts connections and dispatches requests to a Handler.
// Requests on one connection are served concurrently, matching the
// node's need to overlap long matching work with management traffic.
type Server struct {
	ln      net.Listener
	handler Handler

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// Serve starts a server on addr ("127.0.0.1:0" for an ephemeral port).
func Serve(addr string, h Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: listen %s: %w", addr, err)
	}
	s := &Server{ln: ln, handler: h, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops accepting and closes all live connections.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	err := s.ln.Close()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	br := bufio.NewReaderSize(conn, 64<<10)
	var wmu sync.Mutex // serialises response frames
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for {
		f, err := readFrame(br)
		if err != nil {
			return
		}
		go func(req *frame) {
			resp := frame{ID: req.ID}
			out, err := s.handler(ctx, req.Type, req.Body)
			if err != nil {
				resp.Err = err.Error()
			} else if out != nil {
				b, err := json.Marshal(out)
				if err != nil {
					resp.Err = fmt.Sprintf("wire: encoding response: %v", err)
				} else {
					resp.Body = b
				}
			}
			wmu.Lock()
			defer wmu.Unlock()
			_ = writeFrame(conn, &resp)
		}(f)
	}
}

// Client is a multiplexing RPC client for one remote server. Safe for
// concurrent use; a broken connection is redialled on the next call.
type Client struct {
	addr    string
	dialTO  time.Duration
	nextID  atomic.Uint64
	mu      sync.Mutex // guards conn establishment and writes
	conn    net.Conn
	pending map[uint64]chan *frame
	pmu     sync.Mutex
	closed  atomic.Bool
}

// ErrClosed is returned by calls on a closed client.
var ErrClosed = errors.New("wire: client closed")

// NewClient returns a lazy client; the connection opens on first Call.
func NewClient(addr string) *Client {
	return &Client{addr: addr, dialTO: 5 * time.Second, pending: make(map[uint64]chan *frame)}
}

// Close tears the connection down; in-flight calls fail.
func (c *Client) Close() error {
	c.closed.Store(true)
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn != nil {
		err := c.conn.Close()
		c.conn = nil
		return err
	}
	return nil
}

func (c *Client) ensureConn() (net.Conn, error) {
	if c.closed.Load() {
		return nil, ErrClosed
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn != nil {
		return c.conn, nil
	}
	conn, err := net.DialTimeout("tcp", c.addr, c.dialTO)
	if err != nil {
		return nil, fmt.Errorf("wire: dial %s: %w", c.addr, err)
	}
	c.conn = conn
	go c.readLoop(conn)
	return conn, nil
}

func (c *Client) readLoop(conn net.Conn) {
	br := bufio.NewReaderSize(conn, 64<<10)
	for {
		f, err := readFrame(br)
		if err != nil {
			c.failAll(err)
			c.mu.Lock()
			if c.conn == conn {
				c.conn = nil
			}
			c.mu.Unlock()
			conn.Close()
			return
		}
		c.pmu.Lock()
		ch := c.pending[f.ID]
		delete(c.pending, f.ID)
		c.pmu.Unlock()
		if ch != nil {
			ch <- f
		}
	}
}

func (c *Client) failAll(err error) {
	c.pmu.Lock()
	defer c.pmu.Unlock()
	for id, ch := range c.pending {
		ch <- &frame{ID: id, Err: fmt.Sprintf("wire: connection lost: %v", err)}
		delete(c.pending, id)
	}
}

// Call sends a request and decodes the response into out (which may be
// nil to discard). It honours ctx cancellation/deadline without tearing
// down the shared connection.
func (c *Client) Call(ctx context.Context, method string, in, out interface{}) error {
	conn, err := c.ensureConn()
	if err != nil {
		return err
	}
	id := c.nextID.Add(1)
	req := frame{ID: id, Type: method}
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("wire: encoding %s request: %w", method, err)
		}
		req.Body = b
	}
	ch := make(chan *frame, 1)
	c.pmu.Lock()
	c.pending[id] = ch
	c.pmu.Unlock()

	c.mu.Lock()
	werr := writeFrame(conn, &req)
	c.mu.Unlock()
	if werr != nil {
		c.pmu.Lock()
		delete(c.pending, id)
		c.pmu.Unlock()
		// Drop the broken connection so the next call redials.
		c.mu.Lock()
		if c.conn == conn {
			c.conn = nil
		}
		c.mu.Unlock()
		conn.Close()
		return fmt.Errorf("wire: sending %s: %w", method, werr)
	}

	select {
	case <-ctx.Done():
		c.pmu.Lock()
		delete(c.pending, id)
		c.pmu.Unlock()
		return ctx.Err()
	case f := <-ch:
		if f.Err != "" {
			return fmt.Errorf("wire: %s: %s", method, f.Err)
		}
		if out != nil && len(f.Body) > 0 {
			if err := json.Unmarshal(f.Body, out); err != nil {
				return fmt.Errorf("wire: decoding %s response: %w", method, err)
			}
		}
		return nil
	}
}

// Dispatcher routes methods to typed handlers; a convenience for
// building servers.
type Dispatcher struct {
	mu       sync.RWMutex
	handlers map[string]Handler
}

// NewDispatcher returns an empty dispatcher.
func NewDispatcher() *Dispatcher {
	return &Dispatcher{handlers: make(map[string]Handler)}
}

// Register installs a handler for a method name.
func (d *Dispatcher) Register(method string, h Handler) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.handlers[method] = h
}

// Handle implements the server Handler signature.
func (d *Dispatcher) Handle(ctx context.Context, method string, body json.RawMessage) (interface{}, error) {
	d.mu.RLock()
	h, ok := d.handlers[method]
	d.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("wire: unknown method %q", method)
	}
	return h(ctx, method, body)
}
