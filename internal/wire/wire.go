// Package wire is the RPC substrate of the ROAR cluster: length-prefixed
// messages over TCP, with request/response multiplexing across a small
// pool of connections per peer pair.
//
// §4.8.4 discusses the transport choice: TCP for reliability, with the
// observation that data-center RPCs are application-limited and must not
// head-of-line block the scheduler. We multiplex concurrent requests by
// id (so one slow response never blocks dispatching new sub-queries),
// stripe calls round-robin across the pool so request writes are not
// serialised behind one mutex at high concurrency, and give every call
// its own deadline; a timed-out call returns promptly to the caller
// while its connection survives. An abandoned call (deadline, or a
// hedged request that lost its race) additionally sends an in-band
// cancel frame so the server stops the handler instead of computing an
// answer nobody will read. A connection that errors is evicted from the
// pool and lazily redialled.
//
// Framing is negotiated per connection (codec.go): a client opens with a
// wire.hello request; if the server understands it both sides switch to
// the compact binary envelope and hot-path bodies travel in their
// hand-rolled binary form, while control bodies and mixed-version peers
// fall back to JSON. An old server answers hello with "unknown method"
// and the connection transparently stays on the original JSON framing.
package wire

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// MaxFrame bounds a single message (16 MiB) to fail fast on corruption.
const MaxFrame = 16 << 20

// cancelMethod is the reserved in-band control method a client sends
// when it abandons a call (deadline, or a hedged request lost the
// race). The frame's ID names the request to cancel; the server cancels
// that request's context and sends no response. Handlers that honour
// their context (the node's matcher does) stop wasting work on answers
// nobody is waiting for.
const cancelMethod = "wire.cancel"

// Handler serves one request. Returning an error sends it to the caller
// as a call failure; the connection stays up. The body's backing bytes
// are only valid for the duration of the call — Decode copies whatever
// the request struct retains, so decode-then-use handlers need no care.
type Handler func(ctx context.Context, method string, body Body) (interface{}, error)

// --- typed remote errors ---
//
// A handler error crosses the wire as text, which is fine for humans
// but not for clients that must branch on the failure class (the
// mixed-version downgrade ladders). Matching prose is fragile: a proxy
// error can embed the same words, and a reworded message silently
// breaks the branch. So errors that implement ErrorCoder are sent with
// a stable machine-readable marker — "[code] " prefixed to the text —
// and the client hands the parsed class back in RemoteError.Code.
// Uncoded errors (and errors from pre-code servers) travel unchanged
// with Code "".

// Error codes attached by this package and by body decoders. The wire
// contract for a code is 1-32 bytes of lowercase ASCII letters and
// dashes.
const (
	// CodeUnknownMethod: the server has no handler for the method — the
	// signal that the peer predates an RPC entirely.
	CodeUnknownMethod = "unknown-method"
	// CodeTrailingBytes: a strict body decoder rejected unread trailing
	// bytes — the signal that the request carries a trailing extension
	// block the server predates (declared by proto.TrailingBytesError,
	// which must keep this literal in sync).
	CodeTrailingBytes = "trailing-bytes"
	// CodeStaleEpoch: a node rejected an epoch-fenced put whose view
	// epoch is older than the newest the node has observed — the caller
	// must re-pull the view and re-route (declared by
	// node.StaleEpochError, which must keep this literal in sync).
	CodeStaleEpoch = "stale-epoch"
	// CodeBinaryBody: the body arrived in the negotiated binary framing
	// but the server's type for it has no binary decoder — the signal
	// that the peer predates the body's binary codec entirely, so the
	// caller should re-send the same request as JSON. Servers from
	// before this code existed report the same condition uncoded; the
	// downgrade ladders also match the message text.
	CodeBinaryBody = "binary-body"
)

// ErrorCoder is implemented by handler errors that carry a
// machine-readable class. Checked with errors.As, so wrapped errors
// keep their code.
type ErrorCoder interface{ WireErrorCode() string }

// UnknownMethodError is the Dispatcher's rejection of an unregistered
// method. It crosses the wire as CodeUnknownMethod.
type UnknownMethodError struct{ Method string }

func (e *UnknownMethodError) Error() string {
	return fmt.Sprintf("wire: unknown method %q", e.Method)
}

func (e *UnknownMethodError) WireErrorCode() string { return CodeUnknownMethod }

// BinaryBodyError is Body.Decode's rejection of a binary payload aimed
// at a type with no binary decoder. It crosses the wire as
// CodeBinaryBody; the rendered text keeps the historic fmt.Errorf
// spelling so pre-code peers that match strings keep working.
type BinaryBodyError struct{ Type string }

func (e *BinaryBodyError) Error() string {
	return "wire: " + e.Type + " cannot decode a binary body"
}

func (e *BinaryBodyError) WireErrorCode() string { return CodeBinaryBody }

// RemoteError is a failure the remote HANDLER reported — as opposed to
// a transport failure (dial, framing, connection loss), which never
// produces one. Callers distinguish "the server answered and said no"
// from "the network ate the call" with errors.As. Code carries the
// machine-readable class when the server attached one; "" otherwise
// (uncoded errors, or a pre-code server).
type RemoteError struct {
	Method string
	Code   string
	Msg    string
}

func (e *RemoteError) Error() string { return "wire: " + e.Method + ": " + e.Msg }

// validErrCode bounds codes to the wire contract.
func validErrCode(code string) bool {
	if len(code) == 0 || len(code) > 32 {
		return false
	}
	for i := 0; i < len(code); i++ {
		c := code[i]
		if c != '-' && (c < 'a' || c > 'z') {
			return false
		}
	}
	return true
}

// errorText renders a handler error for the response frame, prefixing
// the "[code] " marker when the error declares a valid code.
func errorText(err error) string {
	var ec ErrorCoder
	if errors.As(err, &ec) {
		if code := ec.WireErrorCode(); validErrCode(code) {
			return "[" + code + "] " + err.Error()
		}
	}
	return err.Error()
}

// parseRemoteError turns a response frame's error text into the typed
// form, splitting off the "[code] " marker when present. A bracketed
// prefix that is not a valid code stays in the message — an organic
// bracket, not a contract violation.
func parseRemoteError(method, text string) *RemoteError {
	if strings.HasPrefix(text, "[") {
		if i := strings.IndexByte(text, ']'); i > 1 && i+1 < len(text) && text[i+1] == ' ' && validErrCode(text[1:i]) {
			return &RemoteError{Method: method, Code: text[1:i], Msg: text[i+2:]}
		}
	}
	return &RemoteError{Method: method, Msg: text}
}

// ServerConfig tunes a server.
type ServerConfig struct {
	// DisableBinary rejects wire.hello negotiation, pinning every
	// connection to the version-0 JSON framing. It exists for
	// mixed-version testing — a server built before the binary codec
	// behaves exactly like this — and as an operational escape hatch.
	DisableBinary bool
}

// Server accepts connections and dispatches requests to a Handler.
// Requests on one connection are served concurrently, matching the
// node's need to overlap long matching work with management traffic.
type Server struct {
	ln      net.Listener
	handler Handler
	cfg     ServerConfig

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// Serve starts a server on addr ("127.0.0.1:0" for an ephemeral port).
func Serve(addr string, h Handler) (*Server, error) {
	return ServeWithConfig(addr, h, ServerConfig{})
}

// ServeWithConfig starts a server with explicit configuration.
func ServeWithConfig(addr string, h Handler, cfg ServerConfig) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: listen %s: %w", addr, err)
	}
	s := &Server{ln: ln, handler: h, cfg: cfg, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// ServeListener serves on an already-bound listener. Replicated
// control planes need this: a replica must know every peer's address —
// including its own — before any replica is constructed, so harnesses
// bind all the listeners first and hand them over.
func ServeListener(ln net.Listener, h Handler, cfg ServerConfig) *Server {
	s := &Server{ln: ln, handler: h, cfg: cfg, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// Addr returns the bound address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops accepting and closes all live connections.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	err := s.ln.Close()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	br := bufio.NewReaderSize(conn, 64<<10)
	var wmu sync.Mutex // serialises response frames
	// binMode flips (at most once) when the hello handshake upgrades the
	// connection; the read loop is the only writer, response goroutines
	// read it under wmu so framing and payload stay consistent.
	var binMode atomic.Bool
	ctx, cancel := context.WithCancel(context.Background()) //lint:allow background — a connection's lifetime IS this root; cancelled when the conn closes
	defer cancel()
	// In-progress requests on this connection, so a cancel frame can
	// abort the matching handler's context mid-flight.
	var rmu sync.Mutex
	running := make(map[uint64]context.CancelFunc)
	for {
		f, err := readFrame(br, binMode.Load())
		if err != nil {
			return
		}
		if f.isCancel() {
			rmu.Lock()
			if abort, ok := running[f.ID]; ok {
				abort()
			}
			rmu.Unlock()
			f.release()
			continue // control frame: no handler, no response
		}
		if f.kind == kindRequest && f.Type == helloMethod && !binMode.Load() && !s.cfg.DisableBinary {
			// Version negotiation, handled inline (never dispatched): the
			// response ships in the old framing, then the connection
			// upgrades. The client sends hello first on a fresh
			// connection and waits, so no other traffic straddles the
			// switch.
			var hr helloReq
			_ = Body{codec: f.codec, data: f.Body}.Decode(&hr)
			id := f.ID
			f.release()
			v := hr.Version
			if v > Version {
				v = Version
			}
			if v < 0 {
				v = 0
			}
			body, _ := json.Marshal(helloResp{Version: v})
			resp := frame{ID: id, kind: kindResponse, codec: codecJSON, Body: body}
			wmu.Lock()
			werr := writeFrame(conn, &resp, false)
			if werr == nil && v >= 1 {
				binMode.Store(true)
			}
			wmu.Unlock()
			if werr != nil {
				return
			}
			continue
		}
		rctx, rcancel := context.WithCancel(ctx)
		rmu.Lock()
		running[f.ID] = rcancel
		rmu.Unlock()
		go func(req *frame, rctx context.Context, rcancel context.CancelFunc) {
			defer func() {
				rmu.Lock()
				delete(running, req.ID)
				rmu.Unlock()
				rcancel()
				req.release()
			}()
			resp := frame{ID: req.ID, kind: kindResponse}
			out, err := s.handler(rctx, req.Type, Body{codec: req.codec, data: req.Body})
			var bodyBuf *[]byte
			if err != nil {
				resp.Err = errorText(err)
			} else if out != nil {
				bodyBuf = getBuf()
				data, codec, eerr := encodeBody(out, binMode.Load(), *bodyBuf)
				if eerr != nil {
					resp.Err = fmt.Sprintf("wire: encoding response: %v", eerr)
				} else {
					resp.Body, resp.codec = data, codec
					if codec == codecBinary {
						*bodyBuf = data[:0] // pool the possibly-grown buffer
					}
				}
			}
			wmu.Lock()
			_ = writeFrame(conn, &resp, binMode.Load())
			wmu.Unlock()
			if bodyBuf != nil {
				putBuf(bodyBuf)
			}
		}(f, rctx, rcancel)
	}
}

// ClientConfig tunes a client's connection pool.
type ClientConfig struct {
	// PoolSize is the number of TCP connections calls are striped
	// across (default 1). One multiplexed connection is correct but
	// serialises all request writes behind a single mutex and a single
	// kernel send buffer; a pool removes that bottleneck under high
	// frontend concurrency.
	PoolSize int
	// DialTimeout bounds each connection attempt, including the framing
	// handshake. Default 5s.
	DialTimeout time.Duration
	// DisableBinary skips the wire.hello handshake, pinning every
	// connection to the version-0 JSON framing (mixed-version testing
	// and operational fallback).
	DisableBinary bool
}

func (cfg ClientConfig) withDefaults() ClientConfig {
	if cfg.PoolSize <= 0 {
		cfg.PoolSize = 1
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 5 * time.Second
	}
	return cfg
}

// Client is a pooled, multiplexing RPC client for one remote server.
// Safe for concurrent use. Calls are striped round-robin across up to
// PoolSize connections, each dialled lazily on first use; every
// connection multiplexes many in-flight requests by id. A connection
// that fails (dial, write, or read error) is evicted from the pool and
// redialled on the next call that lands on its slot.
type Client struct {
	addr   string
	cfg    ClientConfig
	nextID atomic.Uint64 // request ids, shared across the pool
	rr     atomic.Uint64 // round-robin cursor
	closed atomic.Bool
	slots  []*slot
}

// slot is one pool position. Each slot has its own lock so a slow dial
// on an empty slot never blocks calls striped to the healthy
// connections of the other slots.
type slot struct {
	mu sync.Mutex
	cc *clientConn
}

// clientConn is one pooled connection with its own in-flight table.
type clientConn struct {
	conn   net.Conn
	br     *bufio.Reader
	binary bool       // negotiated framing; immutable after the handshake
	wmu    sync.Mutex // serialises request frames on this connection

	pmu      sync.Mutex
	pending  map[uint64]chan *frame
	inflight atomic.Int64
	broken   atomic.Bool
}

// ErrClosed is returned by calls on a closed client.
var ErrClosed = errors.New("wire: client closed")

// NewClient returns a lazy single-connection client; the connection
// opens on first Call.
func NewClient(addr string) *Client {
	return NewClientWithConfig(addr, ClientConfig{})
}

// NewClientWithConfig returns a lazy pooled client.
func NewClientWithConfig(addr string, cfg ClientConfig) *Client {
	cfg = cfg.withDefaults()
	c := &Client{addr: addr, cfg: cfg, slots: make([]*slot, cfg.PoolSize)}
	for i := range c.slots {
		c.slots[i] = &slot{}
	}
	return c
}

// PoolSize reports the configured pool width.
func (c *Client) PoolSize() int { return c.cfg.PoolSize }

// ClientStats is a point-in-time pool snapshot.
type ClientStats struct {
	Conns    int // healthy dialled connections
	InFlight int // requests awaiting a response
	Binary   int // connections speaking the binary framing
}

// Stats snapshots the pool.
func (c *Client) Stats() ClientStats {
	var st ClientStats
	for _, s := range c.slots {
		s.mu.Lock()
		if s.cc != nil {
			st.Conns++
			st.InFlight += int(s.cc.inflight.Load())
			if s.cc.binary {
				st.Binary++
			}
		}
		s.mu.Unlock()
	}
	return st
}

// Close tears all connections down; in-flight calls fail.
func (c *Client) Close() error {
	c.closed.Store(true)
	var err error
	for _, s := range c.slots {
		s.mu.Lock()
		if s.cc != nil {
			if e := s.cc.conn.Close(); err == nil {
				err = e
			}
			s.cc = nil
		}
		s.mu.Unlock()
	}
	return err
}

// DrainClose retires the client gracefully: new Calls are rejected with
// ErrClosed immediately, but calls already in flight keep their
// connections and run to completion; the sockets close once the last
// in-flight call finishes, or when the drain timeout expires, whichever
// comes first. It blocks for up to timeout — callers retiring a pool
// out of band (a view-driven retune) run it in a goroutine. Returns
// true when the pool drained fully before the deadline.
func (c *Client) DrainClose(timeout time.Duration) bool {
	c.closed.Store(true)
	// Barrier: conn() checks closed and takes the in-flight reservation
	// under the slot lock, so after cycling each lock once, every call
	// admitted before the flag flip is counted in Stats().InFlight and
	// every later call gets ErrClosed — the poll below cannot close the
	// sockets under a call it never saw.
	for _, s := range c.slots {
		s.mu.Lock()
		//lint:ignore SA2001 empty critical section is the barrier
		s.mu.Unlock()
	}
	deadline := time.Now().Add(timeout)
	drained := false
	for {
		if c.Stats().InFlight == 0 {
			drained = true
			break
		}
		if !time.Now().Before(deadline) {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	c.Close()
	return drained
}

// conn returns the healthy connection for pool index i, dialling (and
// negotiating framing) if the slot is empty — lazy dial, and redial
// after eviction. Only the slot's own lock is held across the dial, so
// a dead slot cannot stall calls on its healthy neighbours.
//
// The caller's in-flight reservation is taken HERE, under the slot
// lock, in the same critical section as the closed check: DrainClose
// sets closed and then takes each slot lock once as a barrier, after
// which every call it let through is visible in Stats().InFlight and
// every later call sees ErrClosed — no window where a call holds a
// connection the drainer believes idle. The caller must release the
// reservation (cc.inflight.Add(-1)) on every path.
func (c *Client) conn(i int) (*clientConn, error) {
	s := c.slots[i]
	s.mu.Lock()
	defer s.mu.Unlock()
	if c.closed.Load() {
		return nil, ErrClosed
	}
	if s.cc != nil {
		s.cc.inflight.Add(1)
		return s.cc, nil
	}
	conn, err := net.DialTimeout("tcp", c.addr, c.cfg.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("wire: dial %s: %w", c.addr, err)
	}
	if c.closed.Load() {
		conn.Close()
		return nil, ErrClosed
	}
	cc := &clientConn{conn: conn, br: bufio.NewReaderSize(conn, 64<<10), pending: make(map[uint64]chan *frame)}
	if !c.cfg.DisableBinary {
		// The handshake shares the dial budget: a server that hangs
		// mid-negotiation is as dead as one that refuses the connection.
		_ = conn.SetDeadline(time.Now().Add(c.cfg.DialTimeout))
		bin, err := c.negotiate(cc)
		if err != nil {
			conn.Close()
			return nil, fmt.Errorf("wire: negotiating with %s: %w", c.addr, err)
		}
		_ = conn.SetDeadline(time.Time{})
		cc.binary = bin
	}
	s.cc = cc
	go c.readLoop(i, cc)
	cc.inflight.Add(1)
	return cc, nil
}

// negotiate runs the wire.hello handshake on a fresh connection (no
// other traffic yet, so reading synchronously is safe). A server that
// rejects the method — any build predating the binary codec — downgrades
// the connection to JSON framing; only transport failures error.
func (c *Client) negotiate(cc *clientConn) (bool, error) {
	id := c.nextID.Add(1)
	body, err := json.Marshal(helloReq{Version: Version})
	if err != nil {
		return false, err
	}
	req := frame{ID: id, Type: helloMethod, kind: kindRequest, codec: codecJSON, Body: body}
	if err := writeFrame(cc.conn, &req, false); err != nil {
		return false, err
	}
	f, err := readFrame(cc.br, false)
	if err != nil {
		return false, err
	}
	defer f.release()
	if f.ID != id {
		return false, fmt.Errorf("unexpected response id %d during handshake", f.ID)
	}
	if f.Err != "" {
		return false, nil // pre-negotiation server: stay on JSON
	}
	var hr helloResp
	if err := decodeInto(f, &hr); err != nil {
		return false, nil
	}
	return hr.Version >= 1, nil
}

// evict removes a failed connection from the pool (health-aware
// eviction: any transport error disqualifies the connection; the slot
// redials on next use) and fails its in-flight calls.
func (c *Client) evict(i int, cc *clientConn, cause error) {
	if cc.broken.Swap(true) {
		return // already evicted
	}
	s := c.slots[i]
	s.mu.Lock()
	if s.cc == cc {
		s.cc = nil
	}
	s.mu.Unlock()
	cc.conn.Close()
	cc.pmu.Lock()
	defer cc.pmu.Unlock()
	for id, ch := range cc.pending {
		ch <- &frame{ID: id, kind: kindResponse, Err: fmt.Sprintf("wire: connection lost: %v", cause), local: true}
		delete(cc.pending, id)
	}
}

func (c *Client) readLoop(i int, cc *clientConn) {
	for {
		f, err := readFrame(cc.br, cc.binary)
		if err != nil {
			c.evict(i, cc, err)
			return
		}
		cc.pmu.Lock()
		ch := cc.pending[f.ID]
		delete(cc.pending, f.ID)
		cc.pmu.Unlock()
		if ch != nil {
			ch <- f
		} else {
			f.release() // late response for an abandoned call
		}
	}
}

// Call sends a request on the next pooled connection and decodes the
// response into out (which may be nil to discard). It honours ctx
// cancellation/deadline without tearing down the shared connection.
// On a binary-framed connection, request and response bodies that
// implement WireAppender/WireDecoder travel in their binary encoding;
// everything else rides as JSON.
func (c *Client) Call(ctx context.Context, method string, in, out interface{}) error {
	i := int(c.rr.Add(1)-1) % len(c.slots)
	cc, err := c.conn(i)
	if err != nil {
		return err
	}
	// conn() took the in-flight reservation under the slot lock (see its
	// comment — DrainClose depends on that ordering).
	defer cc.inflight.Add(-1)
	id := c.nextID.Add(1)
	bodyBuf := getBuf()
	data, codec, err := encodeBody(in, cc.binary, *bodyBuf)
	if err != nil {
		putBuf(bodyBuf)
		return fmt.Errorf("wire: encoding %s request: %w", method, err)
	}
	req := frame{ID: id, Type: method, kind: kindRequest, codec: codec, Body: data}
	ch := make(chan *frame, 1)
	cc.pmu.Lock()
	cc.pending[id] = ch
	cc.pmu.Unlock()

	cc.wmu.Lock()
	werr := writeFrame(cc.conn, &req, cc.binary)
	cc.wmu.Unlock()
	if codec == codecBinary {
		*bodyBuf = data[:0] // pool the possibly-grown append buffer
	}
	putBuf(bodyBuf)
	if werr != nil {
		cc.pmu.Lock()
		delete(cc.pending, id)
		cc.pmu.Unlock()
		c.evict(i, cc, werr)
		return fmt.Errorf("wire: sending %s: %w", method, werr)
	}

	select {
	case <-ctx.Done():
		cc.pmu.Lock()
		delete(cc.pending, id)
		cc.pmu.Unlock()
		// readLoop may have popped the entry just before the delete and
		// parked the response in the buffered channel; reclaim its pooled
		// buffer instead of leaving it to the GC.
		select {
		case f := <-ch:
			f.release()
		default:
		}
		// Tell the server the answer is unwanted (hedge loss, deadline)
		// so it can stop the handler. Best effort: a write failure here
		// just means the connection is already dying.
		cancelFrame := frame{ID: id, Type: cancelMethod, kind: kindCancel}
		cc.wmu.Lock()
		_ = writeFrame(cc.conn, &cancelFrame, cc.binary)
		cc.wmu.Unlock()
		return ctx.Err()
	case f := <-ch:
		defer f.release()
		if f.Err != "" {
			if f.local {
				return errors.New(f.Err) // transport failure, not a handler verdict
			}
			return parseRemoteError(method, f.Err)
		}
		if err := decodeInto(f, out); err != nil {
			return fmt.Errorf("wire: decoding %s response: %w", method, err)
		}
		return nil
	}
}

// Dispatcher routes methods to typed handlers; a convenience for
// building servers.
type Dispatcher struct {
	mu       sync.RWMutex
	handlers map[string]Handler
}

// NewDispatcher returns an empty dispatcher.
func NewDispatcher() *Dispatcher {
	return &Dispatcher{handlers: make(map[string]Handler)}
}

// Register installs a handler for a method name.
func (d *Dispatcher) Register(method string, h Handler) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.handlers[method] = h
}

// Handle implements the server Handler signature.
func (d *Dispatcher) Handle(ctx context.Context, method string, body Body) (interface{}, error) {
	d.mu.RLock()
	h, ok := d.handlers[method]
	d.mu.RUnlock()
	if !ok {
		return nil, &UnknownMethodError{Method: method}
	}
	return h(ctx, method, body)
}
