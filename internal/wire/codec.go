package wire

// Binary hot-path framing. The seed protocol JSON-encoded every frame:
// the envelope (id/type/err) plus the body, with []byte fields —
// trapdoors, nonces, Bloom filters — inflated 4/3× by base64 and every
// uint64 id spelled out in decimal. Those bodies are the two highest-
// volume flows in the cluster (sub-query fan-out and replica pushes), so
// the codec tax is paid p times per query and once per stored record.
//
// After a per-connection negotiation handshake (see wire.go), frames
// switch to a hand-rolled length-prefixed binary envelope:
//
//	uint32  frame length (excluding itself, bounded by MaxFrame)
//	byte    kind: 0 request, 1 response, 2 cancel
//	uvarint id
//	request:  uvarint method length, method bytes
//	response: uvarint error length, error bytes
//	byte    body codec: 0 JSON, 1 binary (absent on cancel)
//	...     body bytes (the rest of the frame)
//
// The body codec byte keeps JSON as the in-envelope fallback: hot bodies
// implement WireAppender/WireDecoder (internal/proto/codec.go) and ride
// as raw binary; control messages (stats, views, joins) stay JSON inside
// the binary envelope, and a peer that never negotiates — an older
// build — speaks the original all-JSON framing for the whole connection.
//
// Frame scratch is pooled: envelopes and bodies are appended into
// reusable buffers, so the steady-state hot path performs no per-frame
// envelope allocations on either side.

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// Version is the highest framing version this build speaks. Version 0
// is the all-JSON framing; version 1 adds the binary envelope and body
// codecs.
const Version = 1

// Frame kinds (binary framing).
const (
	kindRequest  = byte(0)
	kindResponse = byte(1)
	kindCancel   = byte(2)
)

// Body codecs.
const (
	codecJSON   = byte(0)
	codecBinary = byte(1)
)

// WireAppender is implemented by request/response bodies that know how
// to append their binary hot-path encoding. Value receivers suffice, so
// bodies passed by value to Call still qualify.
type WireAppender interface {
	AppendWire(buf []byte) []byte
}

// WireDecoder is the decode side, implemented with pointer receivers.
// Implementations must copy any byte slices they retain: the input
// aliases a pooled read buffer.
type WireDecoder interface {
	DecodeWire(data []byte) error
}

// Body is a received payload plus the codec it arrived in. Handlers
// decode it into their request struct with Decode.
type Body struct {
	codec byte
	data  []byte
}

// JSONBody wraps raw JSON bytes (tests, and the JSON framing path).
func JSONBody(data []byte) Body { return Body{codec: codecJSON, data: data} }

// Len reports the payload size in bytes.
func (b Body) Len() int { return len(b.data) }

// Decode unmarshals the payload into v using the codec it arrived in.
// Binary payloads require v to implement WireDecoder.
func (b Body) Decode(v interface{}) error {
	switch b.codec {
	case codecJSON:
		if len(b.data) == 0 {
			return nil
		}
		return json.Unmarshal(b.data, v)
	case codecBinary:
		d, ok := v.(WireDecoder)
		if !ok {
			return &BinaryBodyError{Type: fmt.Sprintf("%T", v)}
		}
		return d.DecodeWire(b.data)
	default:
		return fmt.Errorf("wire: unknown body codec %d", b.codec)
	}
}

// --- pooled frame buffers ---

// bufPool holds frame scratch buffers. Oversized buffers (beyond
// maxPooledBuf) are dropped rather than pooled, so one giant replica
// push does not pin its footprint forever.
const maxPooledBuf = 1 << 20

var bufPool = sync.Pool{
	New: func() interface{} {
		b := make([]byte, 0, 4<<10)
		return &b
	},
}

func getBuf() *[]byte { return bufPool.Get().(*[]byte) }

func putBuf(b *[]byte) {
	if b == nil || cap(*b) > maxPooledBuf {
		return
	}
	*b = (*b)[:0]
	bufPool.Put(b)
}

// grow returns b resized to n bytes, reallocating only when capacity is
// short.
func grow(b []byte, n int) []byte {
	if cap(b) < n {
		return make([]byte, n)
	}
	return b[:n]
}

// --- frame representation ---

// frame is the internal representation of one message in either
// framing. Body carries the payload bytes; codec says how to decode
// them. pooled, when set, is the read buffer Body aliases — release()
// returns it once the frame's bytes are no longer referenced.
type frame struct {
	ID     uint64
	Type   string // method; empty on responses
	Err    string // error text on responses
	kind   byte
	codec  byte
	Body   []byte
	pooled *[]byte
	// local marks a synthetic frame fabricated on this side (eviction
	// failing in-flight calls). Its Err is a TRANSPORT failure and must
	// not be surfaced as a RemoteError — remote errors are exactly the
	// ones the server's handler reported.
	local bool
}

func (f *frame) isCancel() bool { return f.kind == kindCancel }

// release returns the pooled read buffer, if any. Safe to call more
// than once.
func (f *frame) release() {
	if f.pooled != nil {
		putBuf(f.pooled)
		f.pooled = nil
		f.Body = nil
	}
}

// jsonFrame is the version-0 on-the-wire envelope.
type jsonFrame struct {
	ID   uint64          `json:"id"`
	Type string          `json:"type"`
	Err  string          `json:"err,omitempty"`
	Body json.RawMessage `json:"body,omitempty"`
}

// --- write path ---

// writeFrame encodes f in the connection's negotiated framing and
// writes it as one length-prefixed message.
func writeFrame(w io.Writer, f *frame, binaryMode bool) error {
	buf := getBuf()
	defer putBuf(buf)
	b := (*buf)[:4] // length placeholder
	if binaryMode {
		b = append(b, f.kind)
		b = binary.AppendUvarint(b, f.ID)
		switch f.kind {
		case kindRequest:
			b = binary.AppendUvarint(b, uint64(len(f.Type)))
			b = append(b, f.Type...)
		case kindResponse:
			b = binary.AppendUvarint(b, uint64(len(f.Err)))
			b = append(b, f.Err...)
		case kindCancel:
			// id only
		default:
			return fmt.Errorf("wire: encoding unknown frame kind %d", f.kind)
		}
		if f.kind != kindCancel {
			b = append(b, f.codec)
			b = append(b, f.Body...)
		}
	} else {
		jf := jsonFrame{ID: f.ID, Type: f.Type, Err: f.Err}
		if len(f.Body) > 0 {
			if f.codec != codecJSON {
				return fmt.Errorf("wire: binary body on a JSON-framed connection")
			}
			jf.Body = f.Body
		}
		enc, err := json.Marshal(&jf)
		if err != nil {
			return fmt.Errorf("wire: encoding frame: %w", err)
		}
		b = append(b, enc...)
	}
	n := len(b) - 4
	if n > MaxFrame {
		return fmt.Errorf("wire: frame of %d bytes exceeds limit", n)
	}
	binary.BigEndian.PutUint32(b[:4], uint32(n))
	_, err := w.Write(b)
	*buf = b[:0]
	return err
}

// --- read path ---

// readFrame reads one length-prefixed message in the negotiated
// framing. Binary frames alias a pooled buffer: callers must f.release()
// once decoded. JSON frames copy during unmarshal and need no release.
func readFrame(r io.Reader, binaryMode bool) (*frame, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := int(binary.BigEndian.Uint32(hdr[:]))
	if n > MaxFrame {
		return nil, fmt.Errorf("wire: frame of %d bytes exceeds limit", n)
	}
	buf := getBuf()
	body := grow(*buf, n)
	*buf = body
	if _, err := io.ReadFull(r, body); err != nil {
		putBuf(buf)
		return nil, err
	}
	if !binaryMode {
		defer putBuf(buf)
		var jf jsonFrame
		if err := json.Unmarshal(body, &jf); err != nil {
			return nil, fmt.Errorf("wire: decoding frame: %w", err)
		}
		f := &frame{ID: jf.ID, Type: jf.Type, Err: jf.Err, codec: codecJSON, Body: jf.Body}
		switch {
		case jf.Type == cancelMethod:
			f.kind = kindCancel
		case jf.Type != "":
			f.kind = kindRequest
		default:
			f.kind = kindResponse
		}
		return f, nil
	}
	f, err := decodeBinaryFrame(body)
	if err != nil {
		putBuf(buf)
		return nil, err
	}
	f.pooled = buf
	return f, nil
}

// decodeBinaryFrame parses a binary envelope. The returned frame's Body
// aliases data.
func decodeBinaryFrame(data []byte) (*frame, error) {
	if len(data) < 2 {
		return nil, fmt.Errorf("wire: binary frame of %d bytes too short", len(data))
	}
	f := &frame{kind: data[0]}
	rest := data[1:]
	id, n := binary.Uvarint(rest)
	if n <= 0 {
		return nil, fmt.Errorf("wire: binary frame: bad id varint")
	}
	f.ID = id
	rest = rest[n:]
	switch f.kind {
	case kindCancel:
		if len(rest) != 0 {
			return nil, fmt.Errorf("wire: cancel frame with %d trailing bytes", len(rest))
		}
		f.Type = cancelMethod
		return f, nil
	case kindRequest:
		l, n := binary.Uvarint(rest)
		if n <= 0 || uint64(len(rest)-n) < l {
			return nil, fmt.Errorf("wire: binary frame: bad method length")
		}
		f.Type = string(rest[n : n+int(l)])
		rest = rest[n+int(l):]
	case kindResponse:
		l, n := binary.Uvarint(rest)
		if n <= 0 || uint64(len(rest)-n) < l {
			return nil, fmt.Errorf("wire: binary frame: bad error length")
		}
		f.Err = string(rest[n : n+int(l)])
		rest = rest[n+int(l):]
	default:
		return nil, fmt.Errorf("wire: unknown frame kind %d", f.kind)
	}
	if len(rest) < 1 {
		return nil, fmt.Errorf("wire: binary frame missing body codec")
	}
	f.codec = rest[0]
	if f.codec != codecJSON && f.codec != codecBinary {
		return nil, fmt.Errorf("wire: unknown body codec %d", f.codec)
	}
	f.Body = rest[1:]
	return f, nil
}

// encodeBody renders v for the wire: binary when the connection speaks
// it and the value knows how, JSON otherwise. buf is pooled append
// scratch for the binary path.
func encodeBody(v interface{}, binaryMode bool, buf []byte) (data []byte, codec byte, err error) {
	if v == nil {
		return nil, codecJSON, nil
	}
	if binaryMode {
		if a, ok := v.(WireAppender); ok {
			return a.AppendWire(buf[:0]), codecBinary, nil
		}
	}
	b, err := json.Marshal(v)
	if err != nil {
		return nil, codecJSON, err
	}
	return b, codecJSON, nil
}

// decodeInto decodes a response body into out per the frame's codec.
func decodeInto(f *frame, out interface{}) error {
	if out == nil || len(f.Body) == 0 {
		return nil
	}
	return Body{codec: f.codec, data: f.Body}.Decode(out)
}

// --- negotiation payloads ---

// helloMethod is the reserved version-negotiation method. A client that
// speaks the binary framing sends it as the first request on every new
// connection; a server that understands it answers with the agreed
// version and both sides switch framing. A server that predates it
// answers "unknown method", and the connection simply stays on JSON —
// that error path IS the mixed-version downgrade.
const helloMethod = "wire.hello"

type helloReq struct {
	Version int `json:"version"`
}

type helloResp struct {
	Version int `json:"version"`
}
