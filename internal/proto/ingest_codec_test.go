package proto

import (
	"encoding/json"
	"reflect"
	"testing"
)

// TestPutReqEpochMixedVersion pins the trailing-extension contract of
// PutReq.Epoch (the ingest pipeline's placement fence):
//
//  1. an unfenced PutReq (Epoch 0) encodes byte-identically to the
//     pre-epoch format, so new coordinators keep working against old
//     nodes by simply omitting the fence,
//  2. a fenced PutReq really does carry trailing bytes after the base
//     fields — the exact signal an old node's strict decoder rejects
//     (CodeTrailingBytes), which tells the coordinator to latch that
//     node legacy and resend unfenced,
//  3. the new decoder accepts base-format bytes and leaves Epoch zero,
//  4. a truncated extension errors rather than decoding partially.
func TestPutReqEpochMixedVersion(t *testing.T) {
	unfenced := PutReq{Records: testRecords(3)}
	base := unfenced.AppendWire(nil)

	fenced := unfenced
	fenced.Epoch = 42
	ext := fenced.AppendWire(nil)

	if len(ext) <= len(base) {
		t.Fatalf("fenced encoding (%dB) not longer than base (%dB)", len(ext), len(base))
	}
	if string(ext[:len(base)]) != string(base) {
		t.Fatal("fenced encoding does not extend the base encoding byte-for-byte")
	}
	var dec PutReq
	if err := dec.DecodeWire(base); err != nil {
		t.Fatalf("base decode: %v", err)
	}
	if dec.Epoch != 0 {
		t.Fatalf("base-format bytes decoded with Epoch %d", dec.Epoch)
	}
	var dec2 PutReq
	if err := dec2.DecodeWire(ext); err != nil {
		t.Fatalf("fenced decode: %v", err)
	}
	if dec2.Epoch != 42 {
		t.Fatalf("fenced decode got Epoch %d, want 42", dec2.Epoch)
	}
	if len(dec2.Records) != 3 {
		t.Fatalf("fenced decode lost records (%d of 3)", len(dec2.Records))
	}
	// A large epoch's zigzag spans several bytes — cut one to exercise
	// mid-varint truncation of the extension.
	big := unfenced
	big.Epoch = 1 << 20
	bigExt := big.AppendWire(nil)
	if err := new(PutReq).DecodeWire(bigExt[:len(bigExt)-1]); err == nil {
		t.Fatal("truncated epoch extension accepted")
	}
	// And the JSON side omits the fence entirely when zero, so old
	// JSON-decoding nodes see the identical document too.
	jb, err := json.Marshal(unfenced)
	if err != nil {
		t.Fatal(err)
	}
	if string(jb) != string(mustMarshalNoEpoch(t, unfenced)) {
		t.Fatal("unfenced JSON carries an epoch field")
	}
}

func mustMarshalNoEpoch(t *testing.T, p PutReq) []byte {
	t.Helper()
	var m map[string]json.RawMessage
	jb, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(jb, &m); err != nil {
		t.Fatal(err)
	}
	if _, ok := m["epoch"]; ok {
		t.Fatal("epoch key present in zero-epoch JSON")
	}
	return jb
}

// TestIngestCodecRoundTrip: the member.ingest bodies' binary codecs
// must agree with their JSON encodings (the seed protocol's oracle),
// including empty batches.
func TestIngestCodecRoundTrip(t *testing.T) {
	cases := []struct {
		name string
		in   interface{ AppendWire([]byte) []byte }
		out  interface{ DecodeWire([]byte) error }
	}{
		{"IngestReq", IngestReq{Records: testRecords(5)}, &IngestReq{}},
		{"IngestReq/empty", IngestReq{}, &IngestReq{}},
		{"IngestResp", IngestResp{Seq: 1 << 40, Drained: 77}, &IngestResp{}},
		{"IngestResp/zero", IngestResp{}, &IngestResp{}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			bin := c.in.AppendWire(nil)
			if err := c.out.DecodeWire(bin); err != nil {
				t.Fatalf("DecodeWire: %v", err)
			}
			jb, err := json.Marshal(c.in)
			if err != nil {
				t.Fatal(err)
			}
			want := reflect.New(reflect.TypeOf(c.in)).Interface()
			if err := json.Unmarshal(jb, want); err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(c.out, want) {
				t.Fatalf("binary round trip diverges from JSON:\n bin: %+v\njson: %+v", c.out, want)
			}
		})
	}
}

// FuzzDecodeIngestReq: corrupt ingest bodies must error or decode,
// never panic or over-allocate; valid decodes must re-encode cleanly.
func FuzzDecodeIngestReq(f *testing.F) {
	f.Add(IngestReq{Records: testRecords(2)}.AppendWire(nil))
	f.Add(IngestResp{Seq: 9, Drained: 3}.AppendWire(nil))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		var req IngestReq
		if err := req.DecodeWire(data); err == nil {
			if err := new(IngestReq).DecodeWire(req.AppendWire(nil)); err != nil {
				t.Fatalf("re-decode of valid IngestReq failed: %v", err)
			}
		}
		var resp IngestResp
		if err := resp.DecodeWire(data); err == nil {
			if err := new(IngestResp).DecodeWire(resp.AppendWire(nil)); err != nil {
				t.Fatalf("re-decode of valid IngestResp failed: %v", err)
			}
		}
	})
}
