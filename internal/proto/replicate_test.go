package proto

import (
	"reflect"
	"testing"
)

func testControlState() ControlState {
	return ControlState{
		Epoch: 17, P: 4, PendingP: 2, NextID: 9, Rings: 2,
		Disabled:      []int{1},
		IngestDrained: 21,
		Nodes: []NodeState{
			{ID: 0, Ring: 0, Start: 0, Addr: "127.0.0.1:9001", Speed: 1.5, Rack: "r1"},
			{ID: 3, Ring: 0, Start: 0.25, Addr: "127.0.0.1:9002"},
			{ID: 7, Ring: 1, Start: 0.5, Addr: "127.0.0.1:9003", Speed: 0.5,
				Quarantined: true, QuarantinedAtUnixNanos: 1_700_000_000_000_000_000},
		},
	}
}

// TestReplicateGoldenRoundTrip pins the binary codecs of the four
// replication bodies: encode → decode must reproduce the struct
// exactly, including the empty-collection normalizations.
func TestReplicateGoldenRoundTrip(t *testing.T) {
	cases := []struct {
		name string
		in   interface{ AppendWire([]byte) []byte }
		out  interface{ DecodeWire([]byte) error }
	}{
		{"ReplicateReq", ReplicateReq{
			Term: 5, Leader: "127.0.0.1:7001", Commit: 12,
			Entries: []LogEntry{
				{Index: 12, Term: 5, Kind: EntryState, State: testControlState()},
				{Index: 13, Term: 5, Kind: EntryIntent, State: ControlState{Epoch: 18, P: 4, PendingP: 2, Rings: 1}},
			},
		}, &ReplicateReq{}},
		{"ReplicateReq/heartbeat", ReplicateReq{Term: 9, Leader: "a:1", Commit: 44}, &ReplicateReq{}},
		{"ReplicateResp/ack", ReplicateResp{Term: 5, OK: true, LastIndex: 13}, &ReplicateResp{}},
		{"ReplicateResp/reject", ReplicateResp{Term: 8}, &ReplicateResp{}},
		{"LeaseReq", LeaseReq{Term: 6, Candidate: "127.0.0.1:7002", LastIndex: 13, LastTerm: 5}, &LeaseReq{}},
		{"LeaseResp/granted", LeaseResp{Term: 6, Granted: true, Leader: "127.0.0.1:7002", LastIndex: 13}, &LeaseResp{}},
		{"LeaseResp/refused", LeaseResp{Term: 7, Leader: "127.0.0.1:7001"}, &LeaseResp{}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			bin := c.in.AppendWire(nil)
			if err := c.out.DecodeWire(bin); err != nil {
				t.Fatalf("DecodeWire: %v", err)
			}
			got := reflect.ValueOf(c.out).Elem().Interface()
			if !reflect.DeepEqual(got, c.in) {
				t.Fatalf("round trip diverged:\n got %+v\nwant %+v", got, c.in)
			}
		})
	}
}

// TestReplicateDecodeRejectsCorruption: truncation and trailing garbage
// must error, not mis-decode.
func TestReplicateDecodeRejectsCorruption(t *testing.T) {
	req := ReplicateReq{Term: 5, Leader: "x:1", Commit: 2,
		Entries: []LogEntry{{Index: 2, Term: 5, Kind: EntryState, State: testControlState()}}}
	bin := req.AppendWire(nil)
	for cut := 1; cut < len(bin); cut += 7 {
		if err := new(ReplicateReq).DecodeWire(bin[:cut]); err == nil {
			t.Fatalf("truncation at %d/%d decoded cleanly", cut, len(bin))
		}
	}
	if err := new(ReplicateReq).DecodeWire(append(bin[:len(bin):len(bin)], 0x1)); err == nil {
		t.Fatal("trailing bytes decoded cleanly")
	}
	// A hostile entry count must not pre-allocate unbounded memory.
	huge := []byte{5, 0, 1, 'x', 2, 0xff, 0xff, 0xff, 0xff, 0x7f}
	if err := new(ReplicateReq).DecodeWire(huge); err == nil {
		t.Fatal("hostile entry count decoded cleanly")
	}
}

// TestLeaseRespExtension pins the trailing-extension contract of
// LeaseResp.LastIndex, mirroring the HealthReport extension rules: the
// base prefix is stable, and a base-only decode leaves the field zero.
func TestLeaseRespExtension(t *testing.T) {
	ext := LeaseResp{Term: 3, Granted: true, Leader: "a:1", LastIndex: 41}
	base := ext.StripExt()
	if base.HasExt() {
		t.Fatal("StripExt left extension data behind")
	}
	baseBytes := base.AppendWire(nil)
	extBytes := ext.AppendWire(nil)
	if len(extBytes) <= len(baseBytes) {
		t.Fatal("extension did not extend the encoding")
	}
	if string(extBytes[:len(baseBytes)]) != string(baseBytes) {
		t.Fatal("extended encoding does not extend the base byte-for-byte")
	}
	var got LeaseResp
	if err := got.DecodeWire(baseBytes); err != nil {
		t.Fatal(err)
	}
	if got.LastIndex != 0 {
		t.Fatalf("base decode invented LastIndex %d", got.LastIndex)
	}
}

// FuzzDecodeReplicate: corrupt replication bodies must error or decode,
// never panic or over-allocate; valid decodes must re-encode cleanly.
func FuzzDecodeReplicate(f *testing.F) {
	f.Add(ReplicateReq{Term: 5, Leader: "127.0.0.1:7001", Commit: 12,
		Entries: []LogEntry{{Index: 12, Term: 5, Kind: EntryState, State: testControlState()}}}.AppendWire(nil))
	f.Add(ReplicateReq{Term: 1, Leader: "a:1"}.AppendWire(nil))
	f.Add(ReplicateResp{Term: 5, OK: true, LastIndex: 13}.AppendWire(nil))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		var req ReplicateReq
		if err := req.DecodeWire(data); err == nil {
			if err := new(ReplicateReq).DecodeWire(req.AppendWire(nil)); err != nil {
				t.Fatalf("re-decode of valid ReplicateReq failed: %v", err)
			}
		}
		var resp ReplicateResp
		if err := resp.DecodeWire(data); err == nil {
			if err := new(ReplicateResp).DecodeWire(resp.AppendWire(nil)); err != nil {
				t.Fatalf("re-decode of valid ReplicateResp failed: %v", err)
			}
		}
	})
}

// FuzzDecodeLease: same contract for the election bodies.
func FuzzDecodeLease(f *testing.F) {
	f.Add(LeaseReq{Term: 6, Candidate: "127.0.0.1:7002", LastIndex: 13, LastTerm: 5}.AppendWire(nil))
	f.Add(LeaseResp{Term: 6, Granted: true, Leader: "127.0.0.1:7002", LastIndex: 13}.AppendWire(nil))
	f.Add(LeaseResp{Term: 7}.StripExt().AppendWire(nil))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		var req LeaseReq
		if err := req.DecodeWire(data); err == nil {
			if err := new(LeaseReq).DecodeWire(req.AppendWire(nil)); err != nil {
				t.Fatalf("re-decode of valid LeaseReq failed: %v", err)
			}
		}
		var resp LeaseResp
		if err := resp.DecodeWire(data); err == nil {
			if err := new(LeaseResp).DecodeWire(resp.AppendWire(nil)); err != nil {
				t.Fatalf("re-decode of valid LeaseResp failed: %v", err)
			}
		}
	})
}
