// Control-plane replication bodies (member.replicate / member.lease)
// and their binary codecs. The coordinator's decision log is pushed to
// follower replicas continuously — every view publish, quarantine flip,
// ChangeP, ring power change, decommission, and autoscale decision is
// one log entry — so these bodies ride the negotiated binary framing
// like the data-plane hot bodies: varints, raw float bits, and
// length-prefixed strings instead of JSON keys and decimal counters.
//
// Every LogEntry carries a complete ControlState snapshot. That makes
// follower apply a replacement, not a merge: catch-up after a partition
// is "send the tail" (or just the newest entry when the leader's window
// has moved on), and a replica can always be rebuilt from its single
// latest committed entry.
package proto

import (
	"encoding/binary"
	"math"
)

// LogEntry kinds. Every kind carries a full snapshot; the kind records
// why the entry exists, which matters for takeover: an intent entry
// whose commit never followed tells the new leader to re-drive the
// reconfiguration recorded in State.PendingP.
const (
	// EntryState is an ordinary committed state change (view publish,
	// quarantine flip, join/leave, completed ChangeP, ...).
	EntryState = uint8(0)
	// EntryIntent records a reconfiguration that is about to start
	// (State.PendingP holds the target partitioning level). It is
	// majority-committed BEFORE any data moves, so a leader crash
	// mid-ChangeP leaves the intent durable and the successor finishes
	// the job.
	EntryIntent = uint8(1)
	// EntryTakeover is the no-op barrier a freshly elected leader
	// commits to establish its term (and to republish the state it
	// inherited under that term).
	EntryTakeover = uint8(2)
)

// NodeState is one node's complete control-plane record — everything a
// replica needs to reconstruct the coordinator's view of the node
// (placement, capacity, rack, quarantine verdict).
type NodeState struct {
	ID    int     `json:"id"`
	Ring  int     `json:"ring"`
	Start float64 `json:"start"`
	Addr  string  `json:"addr"`
	Speed float64 `json:"speed,omitempty"`
	Rack  string  `json:"rack,omitempty"`
	// Quarantined mirrors the health aggregator's verdict;
	// QuarantinedAtUnixNanos preserves the quarantine clock across
	// failover so the autoscaler's decommission deadline does not reset
	// every time leadership moves.
	Quarantined            bool  `json:"quarantined,omitempty"`
	QuarantinedAtUnixNanos int64 `json:"quarantined_at_ns,omitempty"`
}

// ControlState is the coordinator's full replicable control state: the
// ring topology, partitioning level, powered-down rings, and per-node
// records. Soft state (failure-evidence scores, speed EWMAs in flight,
// transfer counters) deliberately stays out — it regenerates from the
// frontends' next health reports.
type ControlState struct {
	Epoch int `json:"epoch"`
	P     int `json:"p"`
	// PendingP, when non-zero, is the target of a reconfiguration whose
	// intent has been committed but whose completion has not (see
	// EntryIntent).
	PendingP int         `json:"pending_p,omitempty"`
	NextID   int         `json:"next_id"`
	Rings    int         `json:"rings"`
	Disabled []int       `json:"disabled,omitempty"` // powered-down ring indices
	Nodes    []NodeState `json:"nodes,omitempty"`

	// IngestDrained is the durable-ingest delivery watermark: every WAL
	// sequence <= it has reached all of its owning nodes. Replicating it
	// lets a newly elected leader resume the drain without re-delivering
	// the whole log (the un-replicated tail is re-delivered and absorbed
	// by node-side dedup).
	//
	// Part of the base encoding, not a trailing extension: replica sets
	// deploy together (the same reasoning as LeaseReq.LastTerm), and a
	// pre-watermark entry failing a strict decode makes the follower
	// report a catch-up gap — the safe direction for log replication.
	IngestDrained uint64 `json:"ingest_drained,omitempty"`
}

// LogEntry is one slot of the replicated decision log.
type LogEntry struct {
	Index uint64       `json:"index"`
	Term  uint64       `json:"term"`
	Kind  uint8        `json:"kind,omitempty"`
	State ControlState `json:"state"`
}

// ReplicateReq is the leader's log push / lease-renewal heartbeat: new
// entries (possibly none) plus the leader's commit watermark. A
// follower that accepts it treats the message as a lease renewal for
// Leader at Term.
type ReplicateReq struct {
	Term    uint64     `json:"term"`
	Leader  string     `json:"leader"`
	Commit  uint64     `json:"commit"`
	Entries []LogEntry `json:"entries,omitempty"`
}

// ReplicateResp acknowledges a log push. OK is false when the sender's
// term is stale — the fencing signal that makes a deposed leader step
// down. LastIndex is the follower's last log index either way, which is
// how the leader discovers a catch-up gap.
type ReplicateResp struct {
	Term      uint64 `json:"term"`
	OK        bool   `json:"ok"`
	LastIndex uint64 `json:"last_index"`
}

// LeaseReq is a candidate's election request: grant me the leadership
// lease for Term. (LastTerm, LastIndex) identify the candidate's last
// log entry; voters apply Raft's up-to-date rule — refuse any candidate
// whose last entry is behind the voter's own, comparing terms first and
// indexes only to break term ties — so an elected leader always holds
// every committed decision. Index alone is not enough: a deposed leader
// can sit on a long uncommitted tail whose INDEX passes while a voter's
// committed entry at the same index carries a newer term.
//
// LastTerm is part of the base encoding, not a trailing extension:
// member.lease and this field ship in the same release, so no deployed
// voter predates it, and a short (pre-LastTerm) request failing a
// strict decode denies the vote — the safe direction for an election
// RPC.
type LeaseReq struct {
	Term      uint64 `json:"term"`
	Candidate string `json:"candidate"`
	LastIndex uint64 `json:"last_index"`
	LastTerm  uint64 `json:"last_term"`
}

// LeaseResp answers an election request.
type LeaseResp struct {
	Term    uint64 `json:"term"`
	Granted bool   `json:"granted"`
	// Leader, when non-empty on a refusal, names the holder of the
	// voter's current unexpired grant — a redirect hint for clients.
	Leader string `json:"leader,omitempty"`

	// LastIndex (trailing extension) is the voter's last log index, so
	// a refused candidate learns how far behind it is without another
	// round trip. On the binary codec it rides a trailing extension
	// block emitted only when non-zero — a response without it is
	// byte-identical to the base encoding, the same mixed-version
	// discipline as QueryReq.Plain and HealthReport's telemetry block.
	LastIndex uint64 `json:"last_index,omitempty"`
}

// HasExt reports whether the trailing extension block would be emitted.
func (l LeaseResp) HasExt() bool { return l.LastIndex != 0 }

// StripExt returns a copy without extension fields — the form a
// pre-extension decoder accepts.
func (l LeaseResp) StripExt() LeaseResp {
	l.LastIndex = 0
	return l
}

// --- codecs ---

// A NodeState needs at least 22 wire bytes (two 1-byte varints, two
// 8-byte floats, two 1-byte length prefixes, the quarantine byte and a
// 1-byte varint timestamp); a ControlState at least 7 (five 1-byte
// varints plus two empty counts); a LogEntry at least 10 (index, term,
// kind plus its state). These bound the decoders' count-versus-bytes
// sanity checks.
const (
	nodeStateMinBytes = 22
	logEntryMinBytes  = 10
)

// boolByte encodes a bool as one wire byte. (Expression form, so the
// codecsync analyzer attributes the field read to its wire position;
// an if-statement condition would be invisible to it.)
func boolByte(v bool) byte {
	if v {
		return 1
	}
	return 0
}

func appendNodeState(b []byte, n NodeState) []byte {
	b = appendZigzag(b, int64(n.ID))
	b = appendZigzag(b, int64(n.Ring))
	b = binary.BigEndian.AppendUint64(b, math.Float64bits(n.Start))
	b = binary.AppendUvarint(b, uint64(len(n.Addr)))
	b = append(b, n.Addr...)
	b = binary.BigEndian.AppendUint64(b, math.Float64bits(n.Speed))
	b = binary.AppendUvarint(b, uint64(len(n.Rack)))
	b = append(b, n.Rack...)
	b = append(b, boolByte(n.Quarantined))
	b = appendZigzag(b, n.QuarantinedAtUnixNanos)
	return b
}

func readNodeState(r *reader) NodeState {
	var n NodeState
	n.ID = int(r.zigzag("NodeState.ID"))
	n.Ring = int(r.zigzag("NodeState.Ring"))
	n.Start = math.Float64frombits(r.u64("NodeState.Start"))
	n.Addr = string(r.bytes("NodeState.Addr"))
	n.Speed = math.Float64frombits(r.u64("NodeState.Speed"))
	n.Rack = string(r.bytes("NodeState.Rack"))
	n.Quarantined = r.byte("NodeState.Quarantined") != 0
	n.QuarantinedAtUnixNanos = r.zigzag("NodeState.QuarantinedAtUnixNanos")
	return n
}

func appendControlState(b []byte, s ControlState) []byte {
	b = appendZigzag(b, int64(s.Epoch))
	b = appendZigzag(b, int64(s.P))
	b = appendZigzag(b, int64(s.PendingP))
	b = appendZigzag(b, int64(s.NextID))
	b = appendZigzag(b, int64(s.Rings))
	b = binary.AppendUvarint(b, uint64(len(s.Disabled)))
	for _, k := range s.Disabled {
		b = appendZigzag(b, int64(k))
	}
	b = binary.AppendUvarint(b, uint64(len(s.Nodes)))
	for _, n := range s.Nodes {
		b = appendNodeState(b, n)
	}
	b = binary.AppendUvarint(b, s.IngestDrained)
	return b
}

func readControlState(r *reader) ControlState {
	var s ControlState
	s.Epoch = int(r.zigzag("ControlState.Epoch"))
	s.P = int(r.zigzag("ControlState.P"))
	s.PendingP = int(r.zigzag("ControlState.PendingP"))
	s.NextID = int(r.zigzag("ControlState.NextID"))
	s.Rings = int(r.zigzag("ControlState.Rings"))
	nd := r.count("ControlState.Disabled", 1)
	for i := 0; i < nd && r.err == nil; i++ {
		s.Disabled = append(s.Disabled, int(r.zigzag("ControlState.Disabled ring")))
	}
	nn := r.count("ControlState.Nodes", nodeStateMinBytes)
	if nn > 0 && r.err == nil {
		s.Nodes = make([]NodeState, 0, capHint(nn))
		for i := 0; i < nn && r.err == nil; i++ {
			s.Nodes = append(s.Nodes, readNodeState(r))
		}
	}
	s.IngestDrained = r.uvarint("ControlState.IngestDrained")
	return s
}

func appendLogEntry(b []byte, e LogEntry) []byte {
	b = binary.AppendUvarint(b, e.Index)
	b = binary.AppendUvarint(b, e.Term)
	b = append(b, e.Kind)
	b = appendControlState(b, e.State)
	return b
}

func readLogEntry(r *reader) LogEntry {
	var e LogEntry
	e.Index = r.uvarint("LogEntry.Index")
	e.Term = r.uvarint("LogEntry.Term")
	e.Kind = r.byte("LogEntry.Kind")
	e.State = readControlState(r)
	return e
}

// AppendWire implements wire.WireAppender.
func (q ReplicateReq) AppendWire(b []byte) []byte {
	b = binary.AppendUvarint(b, q.Term)
	b = binary.AppendUvarint(b, uint64(len(q.Leader)))
	b = append(b, q.Leader...)
	b = binary.AppendUvarint(b, q.Commit)
	b = binary.AppendUvarint(b, uint64(len(q.Entries)))
	for _, e := range q.Entries {
		b = appendLogEntry(b, e)
	}
	return b
}

// DecodeWire implements wire.WireDecoder.
func (q *ReplicateReq) DecodeWire(data []byte) error {
	r := &reader{data: data}
	q.Term = r.uvarint("ReplicateReq.Term")
	q.Leader = string(r.bytes("ReplicateReq.Leader"))
	q.Commit = r.uvarint("ReplicateReq.Commit")
	n := r.count("ReplicateReq.Entries", logEntryMinBytes)
	q.Entries = nil
	if n > 0 && r.err == nil {
		q.Entries = make([]LogEntry, 0, capHint(n))
		for i := 0; i < n && r.err == nil; i++ {
			e := readLogEntry(r)
			q.Entries = append(q.Entries, e)
		}
	}
	return r.finish("ReplicateReq")
}

// AppendWire implements wire.WireAppender.
func (q ReplicateResp) AppendWire(b []byte) []byte {
	b = binary.AppendUvarint(b, q.Term)
	b = append(b, boolByte(q.OK))
	b = binary.AppendUvarint(b, q.LastIndex)
	return b
}

// DecodeWire implements wire.WireDecoder.
func (q *ReplicateResp) DecodeWire(data []byte) error {
	r := &reader{data: data}
	q.Term = r.uvarint("ReplicateResp.Term")
	q.OK = r.byte("ReplicateResp.OK") != 0
	q.LastIndex = r.uvarint("ReplicateResp.LastIndex")
	return r.finish("ReplicateResp")
}

// AppendWire implements wire.WireAppender.
func (q LeaseReq) AppendWire(b []byte) []byte {
	b = binary.AppendUvarint(b, q.Term)
	b = binary.AppendUvarint(b, uint64(len(q.Candidate)))
	b = append(b, q.Candidate...)
	b = binary.AppendUvarint(b, q.LastIndex)
	b = binary.AppendUvarint(b, q.LastTerm)
	return b
}

// DecodeWire implements wire.WireDecoder.
func (q *LeaseReq) DecodeWire(data []byte) error {
	r := &reader{data: data}
	q.Term = r.uvarint("LeaseReq.Term")
	q.Candidate = string(r.bytes("LeaseReq.Candidate"))
	q.LastIndex = r.uvarint("LeaseReq.LastIndex")
	q.LastTerm = r.uvarint("LeaseReq.LastTerm")
	return r.finish("LeaseReq")
}

// AppendWire implements wire.WireAppender. The voter's LastIndex rides
// a trailing extension block emitted only when non-zero (see the field
// comment for the mixed-version contract).
func (q LeaseResp) AppendWire(b []byte) []byte {
	b = binary.AppendUvarint(b, q.Term)
	b = append(b, boolByte(q.Granted))
	b = binary.AppendUvarint(b, uint64(len(q.Leader)))
	b = append(b, q.Leader...)
	if !q.HasExt() {
		return b
	}
	b = binary.AppendUvarint(b, q.LastIndex)
	return b
}

// DecodeWire implements wire.WireDecoder. Accepts both the base
// encoding and the extended one, signalled purely by trailing bytes.
func (q *LeaseResp) DecodeWire(data []byte) error {
	r := &reader{data: data}
	q.Term = r.uvarint("LeaseResp.Term")
	q.Granted = r.byte("LeaseResp.Granted") != 0
	q.Leader = string(r.bytes("LeaseResp.Leader"))
	q.LastIndex = 0
	if r.err == nil && r.off < len(r.data) {
		q.LastIndex = r.uvarint("LeaseResp.LastIndex")
	}
	return r.finish("LeaseResp")
}
