package proto

import (
	"encoding/json"
	"reflect"
	"testing"
	"time"

	"roar/internal/pps"
)

// roundTrip marshals v, unmarshals into a fresh value of the same type,
// and requires deep equality — the property the wire layer relies on
// for every message.
func roundTrip(t *testing.T, v interface{}) {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal %T: %v", v, err)
	}
	out := reflect.New(reflect.TypeOf(v))
	if err := json.Unmarshal(b, out.Interface()); err != nil {
		t.Fatalf("unmarshal %T: %v", v, err)
	}
	if got := out.Elem().Interface(); !reflect.DeepEqual(got, v) {
		t.Errorf("%T round-trip mismatch:\n sent %+v\n got  %+v", v, v, got)
	}
}

func testEncoder() *pps.Encoder {
	return pps.NewEncoder(pps.TestKey(1), pps.EncoderConfig{
		MaxKeywords: 2, MaxPathDir: 1,
		SizePoints: pps.LinearPoints(0, 100, 2), DateDays: 30, DateSpan: 2,
		RankBuckets: []int{1},
	})
}

func testQuery(t *testing.T) pps.Query {
	t.Helper()
	q, err := testEncoder().EncryptQuery(pps.And, pps.Predicate{Kind: pps.Keyword, Word: "aa"})
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func testRecord(t *testing.T) pps.Encoded {
	t.Helper()
	rec, err := testEncoder().EncryptDocument(pps.Document{
		ID: 42, Path: "/a/b", Size: 10,
		Modified: time.Unix(1.2e9, 0), Keywords: []string{"aa"},
	})
	if err != nil {
		t.Fatal(err)
	}
	return rec
}

func TestLoadMessages(t *testing.T) {
	roundTrip(t, LoadReq{Path: "/tmp/corpus.dat"})
	roundTrip(t, LoadResp{Records: 12345})
}

func TestFrontendMessages(t *testing.T) {
	roundTrip(t, FEQueryReq{Q: testQuery(t)})
	roundTrip(t, FEQueryResp{
		IDs:        []uint64{1, 2, 1 << 60},
		DelayNanos: 987654321,
		QueueNanos: 1234,
		SubQueries: 7,
		Failures:   2,
		Hedges:     1,
	})
}

func TestNodeQueryMessages(t *testing.T) {
	roundTrip(t, QueryReq{QID: 9, Lo: 0.125, Hi: 0.875, Q: testQuery(t)})
	roundTrip(t, QueryResp{IDs: []uint64{3, 1}, Scanned: 400, MatchNanos: 55, QueueDepth: 3})
	roundTrip(t, PingResp{QueueDepth: 2})
}

func TestNodeDataMessages(t *testing.T) {
	roundTrip(t, PutReq{Records: []pps.Encoded{testRecord(t)}})
	roundTrip(t, PutResp{Stored: 1, Total: 10})
	roundTrip(t, DeleteReq{IDs: []uint64{5, 6}})
	roundTrip(t, RetainReq{Start: 0.25, Length: 0.5, P: 4})
	roundTrip(t, RetainResp{Dropped: 3, Remaining: 7})
	roundTrip(t, StatsResp{Objects: 9, Queries: 100, Scanned: 5000,
		BusyNanos: 777, UptimeSecs: 3.5, PeakConcurrency: 16, Canceled: 4})
}

func TestMembershipMessages(t *testing.T) {
	roundTrip(t, NodeInfo{ID: 3, Ring: 1, Start: 0.75, Addr: "127.0.0.1:9999", Quarantined: true})
	roundTrip(t, JoinReq{Addr: "127.0.0.1:1", SpeedHint: 2.5})
	roundTrip(t, JoinResp{ID: 8, Ring: 0, Start: 0.5})
	roundTrip(t, LeaveReq{ID: 8})
	roundTrip(t, SetPReq{P: 6})
	roundTrip(t, ReportReq{Speeds: map[int]float64{1: 0.5, 2: 1.5}, Failed: []int{3}})
	roundTrip(t, HealthReport{
		FE: "fe-0", Seq: 3, Shed: 2,
		Nodes: []NodeHealth{{ID: 1, Suspicions: 1, ProbeOKs: 2, ProbeFails: 3, Contacts: 4, QueueDepth: 5, Speed: 1.5}},
	})
	roundTrip(t, HealthResp{Epoch: 9, Quarantined: []int{1, 4}})
}

func TestViewAndTuning(t *testing.T) {
	roundTrip(t, Tuning{
		PoolSize: 4, MaxInFlight: 64, DispatchWorkers: 128,
		QueueTimeoutNanos:   int64(2 * time.Second),
		NodeMaxOutstanding:  8,
		HedgeDelayNanos:     int64(50 * time.Millisecond),
		HedgeQuantile:       0.95,
		ProbeIntervalNanos:  int64(time.Second),
		HedgeBudgetFraction: 0.05,
		HedgeBudgetBurst:    4,
		HedgeMaxPerQuery:    6,
		ShedHighWater:       12,
	})
	roundTrip(t, View{
		Epoch: 5, P: 3,
		Nodes: []NodeInfo{
			{ID: 0, Ring: 0, Start: 0, Addr: "127.0.0.1:1"},
			{ID: 1, Ring: 1, Start: 0.5, Addr: "127.0.0.1:2"},
		},
		Tuning: &Tuning{PoolSize: 2, MaxInFlight: 32},
	})
	// Absent tuning must stay absent (old frontends and new views
	// interoperate), and must not serialise as an empty object.
	v := View{Epoch: 1, P: 1, Nodes: []NodeInfo{{Addr: "a"}}}
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	var got View
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	if got.Tuning != nil {
		t.Errorf("zero view grew tuning: %+v", got.Tuning)
	}
}

// TestQueryMatchabilitySurvivesWire pins the end-to-end property the
// protocol exists for: an encrypted query that matched a record before
// serialisation still matches after both cross the wire.
func TestQueryMatchabilitySurvivesWire(t *testing.T) {
	enc := testEncoder()
	rec := testRecord(t)
	q := testQuery(t)

	reqB, err := json.Marshal(QueryReq{QID: 1, Lo: 0, Hi: 1, Q: q})
	if err != nil {
		t.Fatal(err)
	}
	putB, err := json.Marshal(PutReq{Records: []pps.Encoded{rec}})
	if err != nil {
		t.Fatal(err)
	}
	var req QueryReq
	var put PutReq
	if err := json.Unmarshal(reqB, &req); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(putB, &put); err != nil {
		t.Fatal(err)
	}
	m, err := pps.NewMatcher(enc.ServerParams())
	if err != nil {
		t.Fatal(err)
	}
	got := m.MatchAll(req.Q, put.Records)
	if len(got) != 1 || got[0] != rec.ID {
		t.Errorf("query should still match record %d after a wire round-trip, got %v", rec.ID, got)
	}
}
