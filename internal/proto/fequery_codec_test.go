package proto

import (
	"reflect"
	"testing"
)

func testFEQueryReq() FEQueryReq {
	return FEQueryReq{Q: testQueryReq(2, 3).Q, Priority: -1}
}

// TestFEQueryReqGoldenRoundTrip: binary and JSON decode to the same
// struct for every shape the body can take.
func TestFEQueryReqGoldenRoundTrip(t *testing.T) {
	cases := []FEQueryReq{
		testFEQueryReq(),
		{Plain: &PlainQuery{Terms: []string{"alpha", "beta"}, Mode: 2, MinMatch: 1, Limit: 9}, Priority: 1},
		{Q: testQueryReq(1, 2).Q, Tenant: "acme", CacheControl: CacheBypass},
		{Plain: &PlainQuery{Terms: []string{"x"}}, Tenant: "t-1"},
		{CacheControl: CacheRefresh},
	}
	for i, want := range cases {
		var got FEQueryReq
		if err := got.DecodeWire(want.AppendWire(nil)); err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("case %d: round trip diverged:\n got %+v\nwant %+v", i, got, want)
		}
	}
}

// TestFEQueryReqTenantMixedVersion pins the mixed-version contract of
// the tenant/cache-control extension: an anonymous default-cache
// request encodes byte-identically to the base form (StripExt produces
// exactly those bytes), the extended form is a strict byte superset,
// and base-format bytes decode with every extension field zero.
func TestFEQueryReqTenantMixedVersion(t *testing.T) {
	ext := testFEQueryReq()
	ext.Tenant, ext.CacheControl = "tenant-7", CacheRefresh
	base := ext.StripExt()
	if base.HasExt() {
		t.Fatal("StripExt left extension data behind")
	}
	baseBytes := base.AppendWire(nil)
	extBytes := ext.AppendWire(nil)
	if len(extBytes) <= len(baseBytes) {
		t.Fatalf("extended encoding (%dB) not longer than base (%dB)", len(extBytes), len(baseBytes))
	}
	if string(extBytes[:len(baseBytes)]) != string(baseBytes) {
		t.Fatal("extended encoding does not extend the base encoding byte-for-byte")
	}
	var got FEQueryReq
	if err := got.DecodeWire(baseBytes); err != nil {
		t.Fatalf("base decode: %v", err)
	}
	if got.HasExt() {
		t.Fatalf("base-format decode invented extension data: %+v", got)
	}
	if !reflect.DeepEqual(got, base) {
		t.Fatalf("base decode diverged:\n got %+v\nwant %+v", got, base)
	}
	var got2 FEQueryReq
	if err := got2.DecodeWire(extBytes); err != nil {
		t.Fatalf("extended decode: %v", err)
	}
	if !reflect.DeepEqual(got2, ext) {
		t.Fatalf("extended decode diverged:\n got %+v\nwant %+v", got2, ext)
	}
	// A strict pre-extension decoder sees the extension purely as
	// trailing bytes; simulate it by re-checking finish on the base
	// prefix boundary: truncating inside the extension must error.
	if err := new(FEQueryReq).DecodeWire(extBytes[:len(extBytes)-1]); err == nil {
		t.Fatal("truncated extension block accepted")
	}
}

// TestHealthReportTenantExtMixedVersion pins the three-form ladder of
// the health push: base ⊂ autoscale ext ⊂ autoscale+tenant ext, each a
// byte-for-byte prefix of the next, with StripTenants/StripExt mapping
// an extended report onto exactly the earlier forms.
func TestHealthReportTenantExtMixedVersion(t *testing.T) {
	full := HealthReport{
		FE: "fe-0", Seq: 3, Shed: 4, ShedNormal: 2, HedgesDenied: 9,
		QueueP50Nanos: 100, QueueP99Nanos: 900,
		Nodes: []NodeHealth{
			{ID: 5, Contacts: 7, QueueDepth: 2, Speed: 1.5, LatP50Nanos: 10, LatP99Nanos: 99},
		},
		Tenants: []TenantLoad{
			{Tenant: "acme", Admitted: 20, Shed: 3, CacheHits: 11, CacheMisses: 9},
			{Tenant: "", Admitted: 1},
		},
	}
	auto := full.StripTenants()
	if auto.HasTenantExt() {
		t.Fatal("StripTenants left tenant data behind")
	}
	if !auto.HasExt() {
		t.Fatal("StripTenants destroyed the autoscale extension")
	}
	base := full.StripExt()
	if base.HasExt() || base.HasTenantExt() {
		t.Fatal("StripExt left extension data behind")
	}

	baseBytes := base.AppendWire(nil)
	autoBytes := auto.AppendWire(nil)
	fullBytes := full.AppendWire(nil)
	if !(len(baseBytes) < len(autoBytes) && len(autoBytes) < len(fullBytes)) {
		t.Fatalf("encoding sizes not strictly increasing: %d %d %d",
			len(baseBytes), len(autoBytes), len(fullBytes))
	}
	if string(autoBytes[:len(baseBytes)]) != string(baseBytes) {
		t.Fatal("autoscale encoding does not extend the base encoding byte-for-byte")
	}
	if string(fullBytes[:len(autoBytes)]) != string(autoBytes) {
		t.Fatal("tenant encoding does not extend the autoscale encoding byte-for-byte")
	}

	for i, tc := range []struct {
		bytes []byte
		want  HealthReport
	}{{baseBytes, base}, {autoBytes, auto}, {fullBytes, full}} {
		var got HealthReport
		if err := got.DecodeWire(tc.bytes); err != nil {
			t.Fatalf("form %d decode: %v", i, err)
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Fatalf("form %d decode diverged:\n got %+v\nwant %+v", i, got, tc.want)
		}
	}

	// A tenant-only report (no autoscale data) must still round trip:
	// the encoder pads the autoscale block with zeros to reach the
	// tenant block, and the decoder reads it back as all-zero.
	tenantOnly := HealthReport{
		FE: "fe-1", Seq: 1,
		Tenants: []TenantLoad{{Tenant: "solo", Admitted: 5}},
	}
	var got HealthReport
	if err := got.DecodeWire(tenantOnly.AppendWire(nil)); err != nil {
		t.Fatalf("tenant-only decode: %v", err)
	}
	if !reflect.DeepEqual(got, tenantOnly) {
		t.Fatalf("tenant-only decode diverged:\n got %+v\nwant %+v", got, tenantOnly)
	}
}

// FuzzDecodeFEQueryReq: truncated/corrupt client queries must error or
// decode, never panic or over-allocate; valid decodes must re-encode to
// a decodable body. Seeds cover the base form, the plain-index form,
// and the tenant/cache-control extension bytes.
func FuzzDecodeFEQueryReq(f *testing.F) {
	f.Add(testFEQueryReq().AppendWire(nil))
	f.Add(FEQueryReq{
		Plain:  &PlainQuery{Terms: []string{"alpha", "beta"}, Limit: 5},
		Tenant: "acme", CacheControl: CacheBypass,
	}.AppendWire(nil))
	f.Add(FEQueryReq{Q: testQueryReq(1, 1).Q, CacheControl: CacheRefresh}.AppendWire(nil))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		var q FEQueryReq
		if err := q.DecodeWire(data); err != nil {
			return
		}
		var back FEQueryReq
		if err := back.DecodeWire(q.AppendWire(nil)); err != nil {
			t.Fatalf("re-decode of valid FEQueryReq failed: %v", err)
		}
	})
}
