// Binary hot-path body codecs (wire framing version 1). The five bodies
// encoded here carry nearly all of the cluster's steady-state bytes:
// sub-query fan-out (QueryReq/QueryResp, sent p times per query),
// replica pushes (PutReq, once per stored record), and the liveness
// probes that gate failure recovery (PingReq/PingResp). JSON spends
// 4/3× on base64 for every trapdoor, nonce and filter and ~20 decimal
// characters per object id; these encodings ship raw bytes, varints,
// and delta-compressed sorted id sets instead. Everything else —
// membership, stats, retain — stays JSON inside the binary envelope
// (see internal/wire/codec.go), which is also the whole-connection
// fallback for mixed-version clusters.
//
// Encoders use value receivers (bodies are passed to wire.Call by
// value); decoders use pointer receivers and copy every byte slice they
// retain, because the input aliases a pooled read buffer.
package proto

import (
	"encoding/binary"
	"fmt"
	"math"

	"roar/internal/pps"
)

// appendZigzag appends a signed integer in zigzag-uvarint form.
func appendZigzag(b []byte, v int64) []byte {
	return binary.AppendUvarint(b, uint64((v<<1)^(v>>63)))
}

// reader is a bounds-checked cursor over one body.
type reader struct {
	data []byte
	off  int
	err  error
}

func (r *reader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("proto: truncated or corrupt %s", what)
	}
}

func (r *reader) uvarint(what string) uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data[r.off:])
	if n <= 0 {
		r.fail(what)
		return 0
	}
	r.off += n
	return v
}

func (r *reader) zigzag(what string) int64 {
	u := r.uvarint(what)
	return int64(u>>1) ^ -int64(u&1)
}

func (r *reader) byte(what string) byte {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.data) {
		r.fail(what)
		return 0
	}
	b := r.data[r.off]
	r.off++
	return b
}

func (r *reader) u64(what string) uint64 {
	if r.err != nil {
		return 0
	}
	if r.off+8 > len(r.data) {
		r.fail(what)
		return 0
	}
	v := binary.BigEndian.Uint64(r.data[r.off:])
	r.off += 8
	return v
}

// bytes reads a uvarint-length-prefixed byte string and COPIES it (the
// underlying buffer is pooled).
func (r *reader) bytes(what string) []byte {
	l := r.uvarint(what)
	if r.err != nil {
		return nil
	}
	if uint64(len(r.data)-r.off) < l {
		r.fail(what)
		return nil
	}
	if l == 0 {
		return nil
	}
	out := make([]byte, l)
	copy(out, r.data[r.off:])
	r.off += int(l)
	return out
}

// TrailingBytesError is the strict decoders' trailer rejection. It is
// typed because mixed-version peers branch on it: a server that
// predates a trailing extension block rejects the extended encoding
// this way, and the caller downgrades to the base form. The rendered
// text matches the historic fmt.Errorf spelling exactly, so pre-code
// peers that still match strings keep working.
type TrailingBytesError struct {
	What string // body name, e.g. "HealthReport"
	N    int    // unread byte count
}

func (e *TrailingBytesError) Error() string {
	return fmt.Sprintf("proto: %d trailing bytes after %s", e.N, e.What)
}

// WireErrorCode implements wire.ErrorCoder structurally (proto does not
// import wire); the literal must match wire.CodeTrailingBytes.
func (e *TrailingBytesError) WireErrorCode() string { return "trailing-bytes" }

// remaining reports unread bytes; a strict decoder rejects trailers.
func (r *reader) finish(what string) error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.data) {
		return &TrailingBytesError{What: what, N: len(r.data) - r.off}
	}
	return nil
}

// count guards a declared element count against the bytes actually
// present (each element needs at least minBytes on the wire). Decoders
// additionally grow their slices incrementally from a capped capacity
// hint, because in-memory element sizes dwarf wire minimums — a corrupt
// count must not provoke a huge up-front allocation.
func (r *reader) count(what string, minBytes int) int {
	n := r.uvarint(what)
	if r.err != nil {
		return 0
	}
	if n > uint64((len(r.data)-r.off)/minBytes+1) {
		r.fail(what + " count")
		return 0
	}
	return int(n)
}

// capHint bounds the initial capacity of a decoded slice; growth past
// it is paid only as real elements parse successfully.
func capHint(n int) int {
	const maxHint = 1024
	if n > maxHint {
		return maxHint
	}
	return n
}

// --- id set encoding ---

// Sorted ascending id sets are delta-compressed (flag 1): first value
// absolute, then gaps. Unsorted sets fall back to absolute uvarints
// (flag 0) — correctness never depends on sortedness.
const (
	idsAbsolute = byte(0)
	idsDelta    = byte(1)
)

func appendIDs(b []byte, ids []uint64) []byte {
	sorted := true
	for i := 1; i < len(ids); i++ {
		if ids[i] < ids[i-1] {
			sorted = false
			break
		}
	}
	if sorted {
		b = append(b, idsDelta)
		b = binary.AppendUvarint(b, uint64(len(ids)))
		prev := uint64(0)
		for i, id := range ids {
			if i == 0 {
				b = binary.AppendUvarint(b, id)
			} else {
				b = binary.AppendUvarint(b, id-prev)
			}
			prev = id
		}
		return b
	}
	b = append(b, idsAbsolute)
	b = binary.AppendUvarint(b, uint64(len(ids)))
	for _, id := range ids {
		b = binary.AppendUvarint(b, id)
	}
	return b
}

func (r *reader) ids(what string) []uint64 {
	flag := r.byte(what)
	if r.err == nil && flag != idsAbsolute && flag != idsDelta {
		r.fail(what + " encoding flag")
		return nil
	}
	n := r.count(what, 1)
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]uint64, 0, capHint(n))
	prev := uint64(0)
	for i := 0; i < n && r.err == nil; i++ {
		v := r.uvarint(what)
		if flag == idsDelta && i > 0 {
			v += prev
		}
		out = append(out, v)
		prev = v
	}
	if r.err != nil {
		return nil
	}
	return out
}

// --- QueryReq ---

// AppendWire implements wire.WireAppender. A plaintext index query
// rides a trailing extension block (same mixed-version contract as
// HealthReport's autoscale block): encrypted-only requests encode
// byte-identically to the pre-extension format.
func (q QueryReq) AppendWire(b []byte) []byte {
	b = binary.AppendUvarint(b, q.QID)
	b = binary.BigEndian.AppendUint64(b, math.Float64bits(q.Lo))
	b = binary.BigEndian.AppendUint64(b, math.Float64bits(q.Hi))
	b = append(b, byte(q.Q.Op))
	b = binary.AppendUvarint(b, uint64(len(q.Q.Preds)))
	for _, p := range q.Q.Preds {
		b = binary.AppendUvarint(b, uint64(len(p.Trapdoor)))
		for _, x := range p.Trapdoor {
			b = binary.AppendUvarint(b, uint64(len(x)))
			b = append(b, x...)
		}
	}
	if q.Plain == nil {
		return b
	}
	b = append(b, q.Plain.Mode)
	b = appendZigzag(b, int64(q.Plain.MinMatch))
	b = appendZigzag(b, int64(q.Plain.Limit))
	b = binary.AppendUvarint(b, uint64(len(q.Plain.Terms)))
	for _, t := range q.Plain.Terms {
		b = binary.AppendUvarint(b, uint64(len(t)))
		b = append(b, t...)
	}
	return b
}

// DecodeWire implements wire.WireDecoder. Accepts both the base
// encoding (Plain stays nil) and the extended one, signalled purely by
// trailing bytes after the base fields.
func (q *QueryReq) DecodeWire(data []byte) error {
	r := &reader{data: data}
	q.QID = r.uvarint("QueryReq.QID")
	q.Lo = math.Float64frombits(r.u64("QueryReq.Lo"))
	q.Hi = math.Float64frombits(r.u64("QueryReq.Hi"))
	q.Q.Op = pps.BoolOp(r.byte("QueryReq.Op"))
	nPreds := r.count("QueryReq.Preds", 1)
	q.Q.Preds = nil
	if nPreds > 0 && r.err == nil {
		q.Q.Preds = make([]pps.BloomQuery, 0, capHint(nPreds))
		for i := 0; i < nPreds && r.err == nil; i++ {
			nTd := r.count("QueryReq.Trapdoor", 1)
			if r.err != nil {
				break
			}
			td := make([][]byte, 0, capHint(nTd))
			for j := 0; j < nTd && r.err == nil; j++ {
				td = append(td, r.bytes("QueryReq.Trapdoor element"))
			}
			q.Q.Preds = append(q.Q.Preds, pps.BloomQuery{Trapdoor: td})
		}
	}
	q.Plain = nil
	if r.err == nil && r.off < len(r.data) {
		p := &PlainQuery{}
		p.Mode = r.byte("PlainQuery.Mode")
		p.MinMatch = int(r.zigzag("PlainQuery.MinMatch"))
		p.Limit = int(r.zigzag("PlainQuery.Limit"))
		nTerms := r.count("PlainQuery.Terms", 1)
		for i := 0; i < nTerms && r.err == nil; i++ {
			p.Terms = append(p.Terms, string(r.bytes("PlainQuery term")))
		}
		if r.err == nil {
			q.Plain = p
		}
	}
	return r.finish("QueryReq")
}

// --- FEQueryReq ---

// AppendWire implements wire.WireAppender. Unlike QueryReq, the Plain
// selector is an explicit flag byte — the trailing-bytes position is
// taken by the tenant/cache-control extension, which is emitted only
// when set so an anonymous default-cache request stays byte-identical
// to the base form. A server that predates the extension rejects the
// trailer with CodeTrailingBytes and the client strips it; a server
// that predates the binary codec entirely fails with the binary-body
// decode error and the client falls back to JSON (see
// internal/feclient for the ladder).
func (q FEQueryReq) AppendWire(b []byte) []byte {
	b = appendZigzag(b, int64(q.Priority))
	b = append(b, byte(q.Q.Op))
	b = binary.AppendUvarint(b, uint64(len(q.Q.Preds)))
	for _, p := range q.Q.Preds {
		b = binary.AppendUvarint(b, uint64(len(p.Trapdoor)))
		for _, x := range p.Trapdoor {
			b = binary.AppendUvarint(b, uint64(len(x)))
			b = append(b, x...)
		}
	}
	if q.Plain == nil {
		b = append(b, 0)
	} else {
		b = append(b, 1)
		b = append(b, q.Plain.Mode)
		b = appendZigzag(b, int64(q.Plain.MinMatch))
		b = appendZigzag(b, int64(q.Plain.Limit))
		b = binary.AppendUvarint(b, uint64(len(q.Plain.Terms)))
		for _, t := range q.Plain.Terms {
			b = binary.AppendUvarint(b, uint64(len(t)))
			b = append(b, t...)
		}
	}
	if !q.HasExt() {
		return b
	}
	b = binary.AppendUvarint(b, uint64(len(q.Tenant)))
	b = append(b, q.Tenant...)
	b = append(b, q.CacheControl)
	return b
}

// DecodeWire implements wire.WireDecoder. Accepts both the base
// encoding (Tenant stays "", CacheControl 0) and the extended one,
// signalled purely by trailing bytes after the base fields.
func (q *FEQueryReq) DecodeWire(data []byte) error {
	r := &reader{data: data}
	q.Priority = int(r.zigzag("FEQueryReq.Priority"))
	q.Q.Op = pps.BoolOp(r.byte("FEQueryReq.Op"))
	nPreds := r.count("FEQueryReq.Preds", 1)
	q.Q.Preds = nil
	if nPreds > 0 && r.err == nil {
		q.Q.Preds = make([]pps.BloomQuery, 0, capHint(nPreds))
		for i := 0; i < nPreds && r.err == nil; i++ {
			nTd := r.count("FEQueryReq.Trapdoor", 1)
			if r.err != nil {
				break
			}
			td := make([][]byte, 0, capHint(nTd))
			for j := 0; j < nTd && r.err == nil; j++ {
				td = append(td, r.bytes("FEQueryReq.Trapdoor element"))
			}
			q.Q.Preds = append(q.Q.Preds, pps.BloomQuery{Trapdoor: td})
		}
	}
	q.Plain = nil
	if flag := r.byte("FEQueryReq.Plain flag"); r.err == nil && flag != 0 {
		p := &PlainQuery{}
		p.Mode = r.byte("FEQueryReq PlainQuery.Mode")
		p.MinMatch = int(r.zigzag("FEQueryReq PlainQuery.MinMatch"))
		p.Limit = int(r.zigzag("FEQueryReq PlainQuery.Limit"))
		nTerms := r.count("FEQueryReq PlainQuery.Terms", 1)
		for i := 0; i < nTerms && r.err == nil; i++ {
			p.Terms = append(p.Terms, string(r.bytes("FEQueryReq PlainQuery term")))
		}
		if r.err == nil {
			q.Plain = p
		}
	}
	q.Tenant, q.CacheControl = "", 0
	if r.err == nil && r.off < len(r.data) {
		q.Tenant = string(r.bytes("FEQueryReq.Tenant"))
		q.CacheControl = r.byte("FEQueryReq.CacheControl")
	}
	return r.finish("FEQueryReq")
}

// --- QueryResp ---

// AppendWire implements wire.WireAppender.
func (q QueryResp) AppendWire(b []byte) []byte {
	b = appendZigzag(b, int64(q.Scanned))
	b = appendZigzag(b, q.MatchNanos)
	b = appendZigzag(b, int64(q.QueueDepth))
	b = appendIDs(b, q.IDs)
	return b
}

// DecodeWire implements wire.WireDecoder.
func (q *QueryResp) DecodeWire(data []byte) error {
	r := &reader{data: data}
	q.Scanned = int(r.zigzag("QueryResp.Scanned"))
	q.MatchNanos = r.zigzag("QueryResp.MatchNanos")
	q.QueueDepth = int(r.zigzag("QueryResp.QueueDepth"))
	q.IDs = r.ids("QueryResp.IDs")
	return r.finish("QueryResp")
}

// --- PutReq ---

// AppendWire implements wire.WireAppender. The epoch fence rides a
// trailing extension (same mixed-version contract as QueryReq.Plain):
// an unfenced put encodes byte-identically to the pre-extension
// format, and a pre-extension node rejects a fenced one with
// "trailing bytes", which the sender latches as a downgrade signal.
func (p PutReq) AppendWire(b []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(p.Records)))
	for _, rec := range p.Records {
		b = binary.AppendUvarint(b, rec.ID)
		b = binary.AppendUvarint(b, uint64(len(rec.Nonce)))
		b = append(b, rec.Nonce...)
		b = binary.AppendUvarint(b, uint64(len(rec.Filter)))
		b = append(b, rec.Filter...)
	}
	if p.Epoch == 0 {
		return b
	}
	b = appendZigzag(b, int64(p.Epoch))
	return b
}

// DecodeWire implements wire.WireDecoder. Accepts both the base
// encoding (Epoch stays 0) and the fenced one, signalled purely by
// trailing bytes after the base fields.
func (p *PutReq) DecodeWire(data []byte) error {
	r := &reader{data: data}
	n := r.count("PutReq.Records", 3)
	p.Records = nil
	if n > 0 && r.err == nil {
		p.Records = make([]pps.Encoded, 0, capHint(n))
		for i := 0; i < n && r.err == nil; i++ {
			var rec pps.Encoded
			rec.ID = r.uvarint("PutReq record id")
			rec.Nonce = r.bytes("PutReq record nonce")
			rec.Filter = r.bytes("PutReq record filter")
			p.Records = append(p.Records, rec)
		}
	}
	p.Epoch = 0
	if r.err == nil && r.off < len(r.data) {
		p.Epoch = int(r.zigzag("PutReq.Epoch"))
	}
	return r.finish("PutReq")
}

// --- IngestReq / IngestResp ---

// Ingest appends carry the same raw nonce/filter bytes as replica
// pushes, so they ride the binary path too. member.ingest is a new
// method — there is no pre-extension peer to stay byte-compatible
// with, so the encoding is flat.

// AppendWire implements wire.WireAppender.
func (q IngestReq) AppendWire(b []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(q.Records)))
	for _, rec := range q.Records {
		b = binary.AppendUvarint(b, rec.ID)
		b = binary.AppendUvarint(b, uint64(len(rec.Nonce)))
		b = append(b, rec.Nonce...)
		b = binary.AppendUvarint(b, uint64(len(rec.Filter)))
		b = append(b, rec.Filter...)
	}
	return b
}

// DecodeWire implements wire.WireDecoder.
func (q *IngestReq) DecodeWire(data []byte) error {
	r := &reader{data: data}
	n := r.count("IngestReq.Records", 3)
	q.Records = nil
	if n > 0 && r.err == nil {
		q.Records = make([]pps.Encoded, 0, capHint(n))
		for i := 0; i < n && r.err == nil; i++ {
			var rec pps.Encoded
			rec.ID = r.uvarint("IngestReq record id")
			rec.Nonce = r.bytes("IngestReq record nonce")
			rec.Filter = r.bytes("IngestReq record filter")
			q.Records = append(q.Records, rec)
		}
	}
	return r.finish("IngestReq")
}

// AppendWire implements wire.WireAppender.
func (q IngestResp) AppendWire(b []byte) []byte {
	b = binary.AppendUvarint(b, q.Seq)
	b = binary.AppendUvarint(b, q.Drained)
	return b
}

// DecodeWire implements wire.WireDecoder.
func (q *IngestResp) DecodeWire(data []byte) error {
	r := &reader{data: data}
	q.Seq = r.uvarint("IngestResp.Seq")
	q.Drained = r.uvarint("IngestResp.Drained")
	return r.finish("IngestResp")
}

// --- PingReq / PingResp ---

// AppendWire implements wire.WireAppender (a ping carries no payload;
// the empty binary body still skips the JSON envelope).
func (PingReq) AppendWire(b []byte) []byte { return b }

// DecodeWire implements wire.WireDecoder.
func (*PingReq) DecodeWire(data []byte) error {
	if len(data) != 0 {
		return &TrailingBytesError{What: "PingReq", N: len(data)}
	}
	return nil
}

// AppendWire implements wire.WireAppender.
func (p PingResp) AppendWire(b []byte) []byte {
	return appendZigzag(b, int64(p.QueueDepth))
}

// DecodeWire implements wire.WireDecoder.
func (p *PingResp) DecodeWire(data []byte) error {
	r := &reader{data: data}
	p.QueueDepth = int(r.zigzag("PingResp.QueueDepth"))
	return r.finish("PingResp")
}

// --- HealthReport / HealthResp ---

// Health reports ride the same negotiated binary path as the hot
// bodies: every frontend pushes one per report interval, so at fleet
// scale the membership server decodes them continuously and the JSON
// envelope tax (base64-free here, but per-field keys and decimal
// counters) is worth shedding. A NodeHealth entry needs at least 14
// wire bytes (six 1-byte varints plus the 8-byte speed), which bounds
// the decoder's count-versus-bytes sanity check.

const nodeHealthMinBytes = 14

// AppendWire implements wire.WireAppender. The autoscale telemetry
// (shed-by-priority, hedge denials, admission-queue digest, per-node
// latency digests) rides a trailing extension block emitted only when
// at least one extension field is non-zero: a report without extension
// data is byte-identical to the pre-extension encoding, which is what
// keeps mixed-version clusters working — StripExt produces exactly the
// bytes an old coordinator's strict decoder accepts.
func (h HealthReport) AppendWire(b []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(h.FE)))
	b = append(b, h.FE...)
	b = binary.AppendUvarint(b, h.Seq)
	b = appendZigzag(b, int64(h.Shed))
	b = binary.AppendUvarint(b, uint64(len(h.Nodes)))
	for _, nh := range h.Nodes {
		b = appendZigzag(b, int64(nh.ID))
		b = appendZigzag(b, int64(nh.Suspicions))
		b = appendZigzag(b, int64(nh.ProbeOKs))
		b = appendZigzag(b, int64(nh.ProbeFails))
		b = appendZigzag(b, int64(nh.Contacts))
		b = appendZigzag(b, int64(nh.QueueDepth))
		b = binary.BigEndian.AppendUint64(b, math.Float64bits(nh.Speed))
	}
	if !h.HasExt() && !h.HasTenantExt() {
		return b
	}
	b = appendZigzag(b, int64(h.ShedNormal))
	b = appendZigzag(b, int64(h.HedgesDenied))
	b = appendZigzag(b, h.QueueP50Nanos)
	b = appendZigzag(b, h.QueueP99Nanos)
	digests := 0
	for _, nh := range h.Nodes {
		if nh.LatP50Nanos != 0 || nh.LatP99Nanos != 0 {
			digests++
		}
	}
	b = binary.AppendUvarint(b, uint64(digests))
	for _, nh := range h.Nodes {
		if nh.LatP50Nanos == 0 && nh.LatP99Nanos == 0 {
			continue
		}
		b = appendZigzag(b, int64(nh.ID))
		b = appendZigzag(b, nh.LatP50Nanos)
		b = appendZigzag(b, nh.LatP99Nanos)
	}
	// Second extension block: per-tenant admission telemetry. Emitted
	// only when present, so a tenant-free report keeps the exact bytes
	// of the autoscale-only form (and, transitively, of the base form).
	if !h.HasTenantExt() {
		return b
	}
	b = binary.AppendUvarint(b, uint64(len(h.Tenants)))
	for _, tl := range h.Tenants {
		b = binary.AppendUvarint(b, uint64(len(tl.Tenant)))
		b = append(b, tl.Tenant...)
		b = appendZigzag(b, int64(tl.Admitted))
		b = appendZigzag(b, int64(tl.Shed))
		b = appendZigzag(b, int64(tl.CacheHits))
		b = appendZigzag(b, int64(tl.CacheMisses))
	}
	return b
}

// DecodeWire implements wire.WireDecoder. Accepts both the base
// encoding and the extended one: the extension block's presence is
// signalled purely by trailing bytes after the base fields.
func (h *HealthReport) DecodeWire(data []byte) error {
	r := &reader{data: data}
	h.FE = string(r.bytes("HealthReport.FE"))
	h.Seq = r.uvarint("HealthReport.Seq")
	h.Shed = int(r.zigzag("HealthReport.Shed"))
	n := r.count("HealthReport.Nodes", nodeHealthMinBytes)
	h.Nodes = nil
	if n > 0 && r.err == nil {
		h.Nodes = make([]NodeHealth, 0, capHint(n))
		for i := 0; i < n && r.err == nil; i++ {
			var nh NodeHealth
			nh.ID = int(r.zigzag("NodeHealth.ID"))
			nh.Suspicions = int(r.zigzag("NodeHealth.Suspicions"))
			nh.ProbeOKs = int(r.zigzag("NodeHealth.ProbeOKs"))
			nh.ProbeFails = int(r.zigzag("NodeHealth.ProbeFails"))
			nh.Contacts = int(r.zigzag("NodeHealth.Contacts"))
			nh.QueueDepth = int(r.zigzag("NodeHealth.QueueDepth"))
			nh.Speed = math.Float64frombits(r.u64("NodeHealth.Speed"))
			h.Nodes = append(h.Nodes, nh)
		}
	}
	h.ShedNormal, h.HedgesDenied, h.QueueP50Nanos, h.QueueP99Nanos = 0, 0, 0, 0
	h.Tenants = nil
	if r.err == nil && r.off < len(r.data) {
		h.ShedNormal = int(r.zigzag("HealthReport.ShedNormal"))
		h.HedgesDenied = int(r.zigzag("HealthReport.HedgesDenied"))
		h.QueueP50Nanos = r.zigzag("HealthReport.QueueP50Nanos")
		h.QueueP99Nanos = r.zigzag("HealthReport.QueueP99Nanos")
		nd := r.count("HealthReport digests", 3)
		for i := 0; i < nd && r.err == nil; i++ {
			id := int(r.zigzag("NodeHealth digest id"))
			p50 := r.zigzag("NodeHealth.LatP50Nanos")
			p99 := r.zigzag("NodeHealth.LatP99Nanos")
			for j := range h.Nodes {
				if h.Nodes[j].ID == id {
					h.Nodes[j].LatP50Nanos, h.Nodes[j].LatP99Nanos = p50, p99
					break
				}
			}
		}
		if r.err == nil && r.off < len(r.data) {
			nt := r.count("HealthReport.Tenants", 5)
			if nt > 0 && r.err == nil {
				h.Tenants = make([]TenantLoad, 0, capHint(nt))
				for i := 0; i < nt && r.err == nil; i++ {
					var tl TenantLoad
					tl.Tenant = string(r.bytes("TenantLoad.Tenant"))
					tl.Admitted = int(r.zigzag("TenantLoad.Admitted"))
					tl.Shed = int(r.zigzag("TenantLoad.Shed"))
					tl.CacheHits = int(r.zigzag("TenantLoad.CacheHits"))
					tl.CacheMisses = int(r.zigzag("TenantLoad.CacheMisses"))
					h.Tenants = append(h.Tenants, tl)
				}
			}
		}
	}
	return r.finish("HealthReport")
}

// AppendWire implements wire.WireAppender.
func (h HealthResp) AppendWire(b []byte) []byte {
	b = appendZigzag(b, int64(h.Epoch))
	b = binary.AppendUvarint(b, uint64(len(h.Quarantined)))
	for _, id := range h.Quarantined {
		b = appendZigzag(b, int64(id))
	}
	return b
}

// DecodeWire implements wire.WireDecoder.
func (h *HealthResp) DecodeWire(data []byte) error {
	r := &reader{data: data}
	h.Epoch = int(r.zigzag("HealthResp.Epoch"))
	n := r.count("HealthResp.Quarantined", 1)
	h.Quarantined = nil
	if n > 0 && r.err == nil {
		h.Quarantined = make([]int, 0, capHint(n))
		for i := 0; i < n && r.err == nil; i++ {
			h.Quarantined = append(h.Quarantined, int(r.zigzag("HealthResp.Quarantined id")))
		}
	}
	return r.finish("HealthResp")
}
