package proto

import (
	"encoding/binary"
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"

	"roar/internal/pps"
)

func testQueryReq(preds, tdLen int) QueryReq {
	rng := rand.New(rand.NewSource(3))
	q := QueryReq{QID: 12345, Lo: 0.125, Hi: 0.875}
	for i := 0; i < preds; i++ {
		var bq pps.BloomQuery
		for j := 0; j < tdLen; j++ {
			x := make([]byte, 32)
			rng.Read(x)
			bq.Trapdoor = append(bq.Trapdoor, x)
		}
		q.Q.Preds = append(q.Q.Preds, bq)
	}
	q.Q.Op = pps.Or
	return q
}

func testRecords(n int) []pps.Encoded {
	rng := rand.New(rand.NewSource(5))
	recs := make([]pps.Encoded, n)
	for i := range recs {
		recs[i].ID = rng.Uint64()
		recs[i].Nonce = make([]byte, 16)
		rng.Read(recs[i].Nonce)
		recs[i].Filter = make([]byte, 120)
		rng.Read(recs[i].Filter)
	}
	return recs
}

// TestBinaryCodecGoldenRoundTrip: for every hot body, the binary
// encoding must decode to the exact struct the JSON encoding decodes
// to — the two codecs are interchangeable on the wire.
func TestBinaryCodecGoldenRoundTrip(t *testing.T) {
	sortedIDs := []uint64{3, 9, 9, 4096, 1 << 40, 1<<63 + 7}
	unsortedIDs := []uint64{99, 7, 1 << 50, 12}
	cases := []struct {
		name string
		in   interface{} // value implementing AppendWire
		out  interface{} // pointer implementing DecodeWire
	}{
		{"QueryReq", testQueryReq(3, 4), &QueryReq{}},
		{"QueryReq/empty", QueryReq{}, &QueryReq{}},
		{"QueryReq/plain", QueryReq{QID: 9, Lo: 0.25, Hi: 0.75, Plain: &PlainQuery{
			Terms: []string{"alpha", "beta", "gamma"}, Mode: 2, MinMatch: 2, Limit: 10,
		}}, &QueryReq{}},
		{"QueryReq/plain-or", QueryReq{Plain: &PlainQuery{Terms: []string{"x"}, Mode: 1}}, &QueryReq{}},
		{"QueryResp", QueryResp{IDs: sortedIDs, Scanned: 5000, MatchNanos: 123456789, QueueDepth: 3}, &QueryResp{}},
		{"QueryResp/unsorted", QueryResp{IDs: unsortedIDs, Scanned: 1}, &QueryResp{}},
		{"QueryResp/empty", QueryResp{}, &QueryResp{}},
		{"PutReq", PutReq{Records: testRecords(7)}, &PutReq{}},
		{"PutReq/empty", PutReq{}, &PutReq{}},
		{"PingReq", PingReq{}, &PingReq{}},
		{"PingResp", PingResp{QueueDepth: 42}, &PingResp{}},
		{"HealthReport", HealthReport{
			FE: "fe-127.0.0.1:8000", Seq: 77, Shed: 3,
			Nodes: []NodeHealth{
				{ID: 0, Suspicions: 2, ProbeFails: 5, QueueDepth: 9, Speed: 0.125},
				{ID: 41, ProbeOKs: 3, Contacts: 1000, Speed: 123456.75},
			},
		}, &HealthReport{}},
		{"HealthReport/empty", HealthReport{}, &HealthReport{}},
		{"HealthReport/ext", HealthReport{
			FE: "fe-1", Seq: 8, Shed: 2, ShedNormal: 5, HedgesDenied: 17,
			QueueP50Nanos: 1_500_000, QueueP99Nanos: 48_000_000,
			Nodes: []NodeHealth{
				{ID: 1, Contacts: 40, Speed: 2.5, LatP50Nanos: 900_000, LatP99Nanos: 22_000_000},
				{ID: 2, Contacts: 12}, // no digest yet (tracker warming up)
				{ID: 9, Suspicions: 1, LatP99Nanos: 140_000_000},
			},
		}, &HealthReport{}},
		{"HealthResp", HealthResp{Epoch: 12, Quarantined: []int{3, 7, 41}}, &HealthResp{}},
		{"HealthResp/empty", HealthResp{}, &HealthResp{}},
	}
	type appender interface{ AppendWire([]byte) []byte }
	type decoder interface{ DecodeWire([]byte) error }
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			bin := c.in.(appender).AppendWire(nil)
			if err := c.out.(decoder).DecodeWire(bin); err != nil {
				t.Fatalf("DecodeWire: %v", err)
			}
			// The JSON oracle: same input, codec the seed protocol used.
			jb, err := json.Marshal(c.in)
			if err != nil {
				t.Fatal(err)
			}
			want := reflect.New(reflect.TypeOf(c.in)).Interface()
			if err := json.Unmarshal(jb, want); err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(c.out, want) {
				t.Fatalf("binary round trip diverges from JSON:\n bin: %+v\njson: %+v", c.out, want)
			}
		})
	}
}

// TestBinaryCodecDecodeCopies: decoded byte slices must not alias the
// input buffer (it is pooled and will be overwritten).
func TestBinaryCodecDecodeCopies(t *testing.T) {
	in := PutReq{Records: testRecords(2)}
	buf := in.AppendWire(nil)
	var out PutReq
	if err := out.DecodeWire(buf); err != nil {
		t.Fatal(err)
	}
	for i := range buf {
		buf[i] = 0xAA
	}
	if string(out.Records[0].Nonce) != string(in.Records[0].Nonce) {
		t.Fatal("decoded nonce aliases the input buffer")
	}
	if string(out.Records[1].Filter) != string(in.Records[1].Filter) {
		t.Fatal("decoded filter aliases the input buffer")
	}
}

// TestBinaryQueryReqSize: the binary QueryReq sheds the base64 tax and
// JSON structure — ≥30% fewer wire bytes (the trapdoor matrix itself is
// pseudorandom and incompressible, which bounds the on-wire ratio).
func TestBinaryQueryReqSize(t *testing.T) {
	q := testQueryReq(3, 17) // the paper's r=17 hash count
	bin := q.AppendWire(nil)
	jb, err := json.Marshal(q)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("QueryReq: binary=%dB json=%dB (%.1f%%)", len(bin), len(jb), 100*float64(len(bin))/float64(len(jb)))
	if len(bin)*10 > len(jb)*7 {
		t.Fatalf("binary QueryReq %dB not ≥30%% smaller than JSON %dB", len(bin), len(jb))
	}
}

// TestBinaryQueryReqBytesPerOp is the acceptance gate: a binary
// QueryReq encode+decode cycle must allocate ≥50% fewer bytes per op
// than the JSON cycle it replaces (it measures ~70% fewer; the wall
// clock gap is larger still).
func TestBinaryQueryReqBytesPerOp(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark-backed assertion; skipped in -short")
	}
	q := testQueryReq(3, 17)
	jr := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			data, err := json.Marshal(q)
			if err != nil {
				b.Fatal(err)
			}
			var out QueryReq
			if err := json.Unmarshal(data, &out); err != nil {
				b.Fatal(err)
			}
		}
	})
	br := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		buf := make([]byte, 0, 4096)
		for i := 0; i < b.N; i++ {
			buf = q.AppendWire(buf[:0])
			var out QueryReq
			if err := out.DecodeWire(buf); err != nil {
				b.Fatal(err)
			}
		}
	})
	jB, bB := jr.AllocedBytesPerOp(), br.AllocedBytesPerOp()
	t.Logf("QueryReq codec cycle: json=%d B/op, binary=%d B/op (%.1f%%)", jB, bB, 100*float64(bB)/float64(jB))
	if bB*2 > jB {
		t.Fatalf("binary QueryReq %d B/op not ≥50%% below JSON %d B/op", bB, jB)
	}
}

// TestBinaryPutReqSize: replica pushes shrink too — raw nonce/filter vs
// base64 (a 4/3 tax on the dominant filter bytes) plus varint ids vs
// decimal strings and per-record JSON keys bound the ratio at ~70%.
func TestBinaryPutReqSize(t *testing.T) {
	p := PutReq{Records: testRecords(50)}
	bin := p.AppendWire(nil)
	jb, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("PutReq(50): binary=%dB json=%dB (%.1f%%)", len(bin), len(jb), 100*float64(len(bin))/float64(len(jb)))
	if len(bin)*10 > len(jb)*7 {
		t.Fatalf("binary PutReq %dB not ≥30%% smaller than JSON %dB", len(bin), len(jb))
	}
}

// TestBinaryQueryRespDelta: sorted id sets delta-compress; dense sets
// beat both the absolute encoding and JSON by a wide margin.
func TestBinaryQueryRespDelta(t *testing.T) {
	dense := make([]uint64, 1000)
	base := uint64(1 << 40)
	for i := range dense {
		base += uint64(i % 100)
		dense[i] = base
	}
	resp := QueryResp{IDs: dense, Scanned: 100000}
	bin := resp.AppendWire(nil)
	jb, _ := json.Marshal(resp)
	if len(bin)*4 > len(jb) {
		t.Fatalf("delta-coded dense ids: binary %dB, want ≤25%% of JSON %dB", len(bin), len(jb))
	}
	var out QueryResp
	if err := out.DecodeWire(bin); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out.IDs, dense) {
		t.Fatal("delta decode diverged")
	}
}

// TestDecodeCorruptCountBounded: a body declaring a huge element count
// with no matching bytes must fail cheaply — decoders grow slices
// incrementally, so a 16 MB-frame-sized lie cannot force a multi-
// hundred-MB up-front allocation.
func TestDecodeCorruptCountBounded(t *testing.T) {
	// uvarint(16M) followed by nothing: count passes the minBytes sanity
	// check only if backed by bytes, so this must error immediately.
	huge := binary.AppendUvarint(nil, 16<<20)
	var p PutReq
	if err := p.DecodeWire(huge); err == nil {
		t.Fatal("PutReq with phantom records must error")
	}
	// A count that passes the wire-bytes check but runs out of records
	// must stop at the first failed element, not pre-allocate n slots:
	// one real record followed by padding that dies parsing record 2.
	rec := testRecords(1)[0]
	body := binary.AppendUvarint(nil, 1<<20) // claims a million records
	body = binary.AppendUvarint(body, rec.ID)
	body = binary.AppendUvarint(body, uint64(len(rec.Nonce)))
	body = append(body, rec.Nonce...)
	body = binary.AppendUvarint(body, uint64(len(rec.Filter)))
	body = append(body, rec.Filter...)
	pad := make([]byte, 3<<20)
	for i := range pad {
		pad[i] = 0xff // overlong varints: record 2's nonce length is absurd
	}
	body = append(body, pad...)
	var p2 PutReq
	if err := p2.DecodeWire(body); err == nil {
		t.Fatal("PutReq with truncated record stream must error")
	}
}

// TestQueryReqPlainMixedVersion pins the mixed-version contract of the
// plaintext-query extension, mirroring the HealthReport autoscale
// block:
//
//  1. an encrypted-only request (Plain == nil) encodes byte-identically
//     to the pre-extension format — old nodes keep decoding it,
//  2. a plain request is that base encoding plus trailing bytes (what an
//     old node's strict decoder rejects, surfacing as a sub-query
//     failure instead of a silent wrong answer),
//  3. the new decoder leaves Plain nil on base-format bytes.
func TestQueryReqPlainMixedVersion(t *testing.T) {
	enc := testQueryReq(2, 3)
	base := enc.AppendWire(nil)

	plain := enc
	plain.Plain = &PlainQuery{Terms: []string{"alpha", "beta"}, Mode: 0, Limit: 5}
	ext := plain.AppendWire(nil)

	if len(ext) <= len(base) {
		t.Fatalf("plain encoding (%dB) not longer than base (%dB)", len(ext), len(base))
	}
	if string(ext[:len(base)]) != string(base) {
		t.Fatal("plain encoding does not extend the base encoding byte-for-byte")
	}
	var dec QueryReq
	if err := dec.DecodeWire(base); err != nil {
		t.Fatalf("base decode: %v", err)
	}
	if dec.Plain != nil {
		t.Fatal("base-format bytes decoded with non-nil Plain")
	}
	var dec2 QueryReq
	if err := dec2.DecodeWire(ext); err != nil {
		t.Fatalf("extended decode: %v", err)
	}
	if dec2.Plain == nil || len(dec2.Plain.Terms) != 2 || dec2.Plain.Limit != 5 {
		t.Fatalf("extended decode lost the plain query: %+v", dec2.Plain)
	}
	// Truncating the extension mid-way must error, not decode partially.
	if err := new(QueryReq).DecodeWire(ext[:len(base)+2]); err == nil {
		t.Fatal("truncated extension block accepted")
	}
}

// FuzzDecodeQueryReq: truncated/corrupt bodies must error or decode,
// never panic or over-allocate.
func FuzzDecodeQueryReq(f *testing.F) {
	f.Add(testQueryReq(2, 3).AppendWire(nil))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		var q QueryReq
		if err := q.DecodeWire(data); err != nil {
			return
		}
		// A valid decode must re-encode to an equivalent struct.
		var back QueryReq
		if err := back.DecodeWire(q.AppendWire(nil)); err != nil {
			t.Fatalf("re-decode of valid QueryReq failed: %v", err)
		}
	})
}

// FuzzDecodeQueryResp: same contract for the response body.
func FuzzDecodeQueryResp(f *testing.F) {
	f.Add(QueryResp{IDs: []uint64{1, 5, 9}, Scanned: 10}.AppendWire(nil))
	f.Add([]byte{0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		var q QueryResp
		_ = q.DecodeWire(data)
	})
}

// TestHealthReportExtMixedVersion pins the mixed-version contract of
// the autoscale extension:
//
//  1. a report with no extension data encodes byte-identically to the
//     pre-extension format (old coordinators keep decoding it),
//  2. StripExt of an extended report produces exactly that base form,
//  3. the new decoder accepts base-format bytes and leaves every
//     extension field zero,
//  4. an extended report really does carry trailing bytes after the
//     base fields — the signal an old strict decoder rejects, which is
//     what tells a new frontend to fall back to StripExt.
func TestHealthReportExtMixedVersion(t *testing.T) {
	ext := HealthReport{
		FE: "fe-0", Seq: 3, Shed: 4, ShedNormal: 2, HedgesDenied: 9,
		QueueP50Nanos: 100, QueueP99Nanos: 900,
		Nodes: []NodeHealth{
			{ID: 5, Contacts: 7, QueueDepth: 2, Speed: 1.5, LatP50Nanos: 10, LatP99Nanos: 99},
		},
	}
	base := ext.StripExt()
	if base.HasExt() {
		t.Fatal("StripExt left extension data behind")
	}
	if ext.Nodes[0].LatP50Nanos == 0 {
		t.Fatal("StripExt mutated the original report's node slice")
	}
	baseBytes := base.AppendWire(nil)
	extBytes := ext.AppendWire(nil)
	if len(extBytes) <= len(baseBytes) {
		t.Fatalf("extended encoding (%dB) not longer than base (%dB)", len(extBytes), len(baseBytes))
	}
	// The base prefix of the extended encoding IS the base encoding.
	if string(extBytes[:len(baseBytes)]) != string(baseBytes) {
		t.Fatal("extended encoding does not extend the base encoding byte-for-byte")
	}
	var got HealthReport
	if err := got.DecodeWire(baseBytes); err != nil {
		t.Fatalf("new decoder rejected base-format bytes: %v", err)
	}
	if got.HasExt() {
		t.Fatalf("base-format decode invented extension data: %+v", got)
	}
	if !reflect.DeepEqual(got, base) {
		t.Fatalf("base decode diverged:\n got %+v\nwant %+v", got, base)
	}
	var got2 HealthReport
	if err := got2.DecodeWire(extBytes); err != nil {
		t.Fatalf("extended decode: %v", err)
	}
	if !reflect.DeepEqual(got2, ext) {
		t.Fatalf("extended decode diverged:\n got %+v\nwant %+v", got2, ext)
	}
}

// FuzzDecodeHealthReport: truncated/corrupt health pushes must error or
// decode, never panic or over-allocate; valid decodes must re-encode to
// a decodable body.
func FuzzDecodeHealthReport(f *testing.F) {
	f.Add(HealthReport{
		FE: "fe", Seq: 9, Shed: 1,
		Nodes: []NodeHealth{{ID: 4, Suspicions: 1, Speed: 2.5}},
	}.AppendWire(nil))
	f.Add(HealthReport{
		FE: "fe", Seq: 10, ShedNormal: 3, HedgesDenied: 2, QueueP99Nanos: 7,
		Nodes: []NodeHealth{{ID: 4, Contacts: 2, LatP50Nanos: 5, LatP99Nanos: 50}},
	}.AppendWire(nil))
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x01, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		var h HealthReport
		if err := h.DecodeWire(data); err != nil {
			return
		}
		var back HealthReport
		if err := back.DecodeWire(h.AppendWire(nil)); err != nil {
			t.Fatalf("re-decode of valid HealthReport failed: %v", err)
		}
	})
}

// FuzzDecodeHealthResp: same contract for the aggregator's verdict.
func FuzzDecodeHealthResp(f *testing.F) {
	f.Add(HealthResp{Epoch: 3, Quarantined: []int{1, 2}}.AppendWire(nil))
	f.Add([]byte{0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		var h HealthResp
		_ = h.DecodeWire(data)
	})
}

// FuzzDecodePutReq: same contract for replica pushes.
func FuzzDecodePutReq(f *testing.F) {
	f.Add(PutReq{Records: testRecords(2)}.AppendWire(nil))
	f.Add([]byte{0xff, 0x01, 0x02})
	f.Fuzz(func(t *testing.T, data []byte) {
		var p PutReq
		_ = p.DecodeWire(data)
	})
}

// BenchmarkCodecQueryReq compares encode+decode cost of the two codecs
// for the hot sub-query body (CI tracks this next to the match kernel).
func BenchmarkCodecQueryReq(b *testing.B) {
	q := testQueryReq(3, 17)
	b.Run("json", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			data, err := json.Marshal(q)
			if err != nil {
				b.Fatal(err)
			}
			var out QueryReq
			if err := json.Unmarshal(data, &out); err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(len(data)), "bytes/op")
		}
	})
	b.Run("binary", func(b *testing.B) {
		b.ReportAllocs()
		buf := make([]byte, 0, 4096)
		for i := 0; i < b.N; i++ {
			buf = q.AppendWire(buf[:0])
			var out QueryReq
			if err := out.DecodeWire(buf); err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(len(buf)), "bytes/op")
		}
	})
}

// BenchmarkCodecQueryResp: the response side with a realistic sorted
// id set.
func BenchmarkCodecQueryResp(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	ids := make([]uint64, 500)
	for i := range ids {
		ids[i] = rng.Uint64()
	}
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	resp := QueryResp{IDs: ids, Scanned: 100000, MatchNanos: 5e6}
	b.Run("json", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			data, err := json.Marshal(resp)
			if err != nil {
				b.Fatal(err)
			}
			var out QueryResp
			if err := json.Unmarshal(data, &out); err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(len(data)), "bytes/op")
		}
	})
	b.Run("binary", func(b *testing.B) {
		b.ReportAllocs()
		buf := make([]byte, 0, 8192)
		for i := 0; i < b.N; i++ {
			buf = resp.AppendWire(buf[:0])
			var out QueryResp
			if err := out.DecodeWire(buf); err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(len(buf)), "bytes/op")
		}
	})
}
