// Package proto defines the RPC payloads exchanged between the ROAR
// cluster roles (frontend, data node, membership server). Keeping them
// in one place documents the protocol and avoids import cycles.
package proto

import (
	"roar/internal/pps"
)

// Method names.
const (
	// Node methods.
	MNodeQuery  = "node.query"
	MNodePut    = "node.put"
	MNodeDelete = "node.delete"
	MNodeRetain = "node.retain"
	MNodeStats  = "node.stats"
	MNodePing   = "node.ping"

	// Membership methods (for the cmd/roar-member wire wrapper).
	MMemberJoin   = "member.join"
	MMemberLeave  = "member.leave"
	MMemberView   = "member.view"
	MMemberSetP   = "member.setp"
	MMemberReport = "member.report"
	MMemberLoad   = "member.load"
	MMemberHealth = "member.health"

	// Frontend client-facing method (cmd/roar-frontend).
	MFEQuery = "fe.query"
)

// LoadReq asks the membership server to load a corpus file (written by
// store.SaveFile) as the backend object set.
type LoadReq struct {
	Path string `json:"path"`
}

// LoadResp reports the loaded record count.
type LoadResp struct {
	Records int `json:"records"`
}

// FEQueryReq is a client query to a frontend. Priority selects the
// admission class: 0 is normal, negative is sheddable (rejected first
// when the frontend is overloaded), positive is never shed.
type FEQueryReq struct {
	Q        pps.Query `json:"q"`
	Priority int       `json:"priority,omitempty"`
}

// FEQueryResp is the frontend's answer.
type FEQueryResp struct {
	IDs        []uint64 `json:"ids,omitempty"`
	DelayNanos int64    `json:"delay_ns"`
	QueueNanos int64    `json:"queue_ns"` // admission-control wait
	SubQueries int      `json:"sub_queries"`
	Failures   int      `json:"failures"` // failed sub-queries recovered
	Hedges     int      `json:"hedges"`   // speculative re-dispatches launched
}

// QueryReq asks a node to match the encrypted query against its stored
// objects with ids in the half-open arc (Lo, Hi] — §4.2's partitioned
// sub-query carrying the duplicate-avoidance bounds.
type QueryReq struct {
	QID uint64    `json:"qid"` // query id, for logging/tracing
	Lo  float64   `json:"lo"`
	Hi  float64   `json:"hi"`
	Q   pps.Query `json:"q"`
}

// QueryResp carries the matching object ids.
type QueryResp struct {
	IDs     []uint64 `json:"ids,omitempty"`
	Scanned int      `json:"scanned"`
	// MatchNanos is pure matching time on the node, for the delay
	// breakdown of Fig 7.11.
	MatchNanos int64 `json:"match_ns"`
	// QueueDepth is the number of OTHER sub-queries executing on the
	// node when this response was produced. Frontends fold it into
	// their finish-time estimates so a node backed up by competing
	// frontends is scheduled around before its own EWMA degrades.
	QueueDepth int `json:"queue_depth,omitempty"`
}

// PingReq is a liveness/recovery probe (MNodePing). It carries no
// fields; having a named type lets the probe ride the binary hot-path
// codec instead of a JSON null.
type PingReq struct{}

// PingResp answers a liveness/recovery probe (MNodePing) with the
// node's current load, so a recovering node rejoins the schedule with a
// realistic queue estimate instead of a blank slate.
type PingResp struct {
	QueueDepth int `json:"queue_depth"`
}

// PutReq pushes replica records to a node (the backend update server
// strategy of §4.1).
type PutReq struct {
	Records []pps.Encoded `json:"records"`
}

// PutResp acknowledges stored records.
type PutResp struct {
	Stored int `json:"stored"`
	Total  int `json:"total"` // node's record count after the put
}

// DeleteReq removes records by id.
type DeleteReq struct {
	IDs []uint64 `json:"ids"`
}

// RetainReq tells a node its (possibly new) range and partitioning
// level; the node drops every record outside the implied stored set
// (§4.5: increasing p means dropping replicas immediately).
type RetainReq struct {
	Start  float64 `json:"start"`
	Length float64 `json:"length"`
	P      int     `json:"p"`
}

// RetainResp reports the deletions.
type RetainResp struct {
	Dropped   int `json:"dropped"`
	Remaining int `json:"remaining"`
}

// StatsResp is a node's counters (Fig 7.3 CPU load, Table 7.3 health).
type StatsResp struct {
	Objects    int     `json:"objects"`
	Queries    int64   `json:"queries"`
	Scanned    int64   `json:"scanned"`
	BusyNanos  int64   `json:"busy_ns"`
	UptimeSecs float64 `json:"uptime_s"`
	// PeakConcurrency is the high-water mark of simultaneously
	// executing sub-queries, evidence that frontend dispatch actually
	// overlaps work on the node.
	PeakConcurrency int64 `json:"peak_concurrency,omitempty"`
	// Canceled counts sub-queries aborted mid-match because the caller
	// cancelled (hedge losses, client disconnects).
	Canceled int64 `json:"canceled,omitempty"`
}

// NodeInfo describes one node's placement for frontend consumption.
type NodeInfo struct {
	ID    int     `json:"id"`
	Ring  int     `json:"ring"`
	Start float64 `json:"start"`
	Addr  string  `json:"addr"`
	// Quarantined demotes the node from scheduling without dropping it
	// from storage: it keeps its ring range and data (so recovery is a
	// view flip, not a data transfer), but frontends must not dispatch
	// sub-queries to it. Set by the membership health aggregator when a
	// node's failure-evidence score crosses the quarantine threshold.
	Quarantined bool `json:"quarantined,omitempty"`
}

// Tuning carries the frontend execution-pipeline knobs. The membership
// server distributes it inside the View so every frontend converges on
// the same connection-pool and admission configuration; zero-valued
// fields leave the frontend's local configuration in force.
type Tuning struct {
	// PoolSize is the per-node wire connection pool width.
	PoolSize int `json:"pool_size,omitempty"`
	// MaxInFlight caps concurrently executing queries per frontend.
	MaxInFlight int `json:"max_in_flight,omitempty"`
	// DispatchWorkers bounds concurrent sub-query RPCs per frontend.
	DispatchWorkers int `json:"dispatch_workers,omitempty"`
	// QueueTimeoutNanos bounds the admission-queue wait.
	QueueTimeoutNanos int64 `json:"queue_timeout_ns,omitempty"`
	// NodeMaxOutstanding caps in-flight sub-queries per node per
	// frontend (per-node backpressure: a slow node stalls only its own
	// dispatch stream, not the global worker pool).
	NodeMaxOutstanding int `json:"node_max_outstanding,omitempty"`
	// HedgeDelayNanos re-dispatches a still-unanswered sub-query onto
	// replica nodes after this delay (0 leaves the frontend's own
	// configuration in force).
	HedgeDelayNanos int64 `json:"hedge_delay_ns,omitempty"`
	// HedgeQuantile, in (0, 1), derives the hedge delay adaptively from
	// that quantile of recently observed sub-query latencies.
	HedgeQuantile float64 `json:"hedge_quantile,omitempty"`
	// ProbeIntervalNanos is the cadence of the background recovery
	// probe that re-evaluates suspected nodes.
	ProbeIntervalNanos int64 `json:"probe_interval_ns,omitempty"`
	// HedgeBudgetFraction caps hedged sub-query legs to this fraction
	// of dispatched primaries (token bucket; see frontend.Config).
	HedgeBudgetFraction float64 `json:"hedge_budget_fraction,omitempty"`
	// HedgeBudgetBurst is the hedge token-bucket capacity.
	HedgeBudgetBurst float64 `json:"hedge_budget_burst,omitempty"`
	// HedgeMaxPerQuery caps hedged legs launched for one query.
	HedgeMaxPerQuery int `json:"hedge_max_per_query,omitempty"`
	// ShedHighWater is the mean reported node queue depth at which a
	// frontend enters overload: hedging pauses and sheddable-priority
	// admissions are rejected.
	ShedHighWater int `json:"shed_high_water,omitempty"`
}

// View is the membership server's cluster snapshot: everything a
// frontend needs to schedule queries.
type View struct {
	Epoch  int        `json:"epoch"` // increases on every change
	P      int        `json:"p"`     // safe partitioning level (§4.5)
	Nodes  []NodeInfo `json:"nodes"`
	Tuning *Tuning    `json:"tuning,omitempty"` // frontend pipeline knobs
}

// JoinReq registers a node with the membership server.
type JoinReq struct {
	Addr      string  `json:"addr"`
	SpeedHint float64 `json:"speed_hint,omitempty"`
}

// JoinResp returns the assigned placement.
type JoinResp struct {
	ID    int     `json:"id"`
	Ring  int     `json:"ring"`
	Start float64 `json:"start"`
}

// LeaveReq removes a node gracefully.
type LeaveReq struct {
	ID int `json:"id"`
}

// SetPReq requests an on-the-fly partitioning change (§4.5).
type SetPReq struct {
	P int `json:"p"`
}

// ReportReq carries frontend statistics to the membership server
// (§4.9: node liveness and processing speed observations). It predates
// HealthReport; new coordinators fold Failed entries into the health
// aggregator as suspicion evidence, so old frontends keep interoperating.
type ReportReq struct {
	Speeds map[int]float64 `json:"speeds,omitempty"` // node id -> fraction/s
	Failed []int           `json:"failed,omitempty"`
}

// NodeHealth is one frontend's observations of one node since its last
// report. Counters are deltas, so the membership aggregator can sum
// them across frontends without double counting.
type NodeHealth struct {
	ID int `json:"id"`
	// Suspicions counts healthy/recovering -> suspected transitions
	// (sub-query timeouts or transport errors).
	Suspicions int `json:"suspicions,omitempty"`
	// ProbeOKs / ProbeFails count background recovery-probe outcomes.
	ProbeOKs   int `json:"probe_oks,omitempty"`
	ProbeFails int `json:"probe_fails,omitempty"`
	// Contacts counts successful sub-query completions.
	Contacts int `json:"contacts,omitempty"`
	// QueueDepth is the node's last self-reported queue depth.
	QueueDepth int `json:"queue_depth,omitempty"`
	// Speed is the frontend's EWMA speed estimate (fraction/s; 0 =
	// no observation yet).
	Speed float64 `json:"speed,omitempty"`
}

// HealthReport is the periodic per-frontend health push (MMemberHealth):
// everything the membership aggregator needs to fold this frontend's
// view of the cluster into per-node failure-evidence scores.
type HealthReport struct {
	// FE identifies the reporting frontend (its listen address, or any
	// stable name) so the aggregator can track report continuity.
	FE string `json:"fe,omitempty"`
	// Seq increases by one per report from this frontend.
	Seq uint64 `json:"seq"`
	// Shed counts queries this frontend rejected at admission due to
	// overload since its last report.
	Shed int `json:"shed,omitempty"`
	// Nodes carries the per-node observation deltas.
	Nodes []NodeHealth `json:"nodes,omitempty"`
}

// HealthResp acknowledges a health report with the aggregator's current
// verdict, closing the loop: a frontend seeing an Epoch ahead of its
// installed view should re-pull the view immediately instead of waiting
// for its poll timer.
type HealthResp struct {
	Epoch int `json:"epoch"`
	// Quarantined lists the node ids currently demoted from scheduling.
	Quarantined []int `json:"quarantined,omitempty"`
}
