// Package proto defines the RPC payloads exchanged between the ROAR
// cluster roles (frontend, data node, membership server). Keeping them
// in one place documents the protocol and avoids import cycles.
package proto

import (
	"roar/internal/pps"
)

// Method names.
const (
	// Node methods.
	MNodeQuery  = "node.query"
	MNodePut    = "node.put"
	MNodeDelete = "node.delete"
	MNodeRetain = "node.retain"
	MNodeStats  = "node.stats"
	MNodePing   = "node.ping"

	// Membership methods (for the cmd/roar-member wire wrapper).
	MMemberJoin   = "member.join"
	MMemberLeave  = "member.leave"
	MMemberView   = "member.view"
	MMemberSetP   = "member.setp"
	MMemberReport = "member.report"
	MMemberLoad   = "member.load"
	MMemberHealth = "member.health"

	// Coordinator replication methods (control-plane HA): the leader
	// pushes its decision log to follower replicas with member.replicate
	// and acquires/renews its election lease with member.lease.
	MMemberReplicate = "member.replicate"
	MMemberLease     = "member.lease"

	// Durable ingest: producers append records to the coordinator's
	// write-ahead log; delivery to the owning nodes is asynchronous.
	MMemberIngest = "member.ingest"

	// Frontend client-facing methods (cmd/roar-frontend).
	MFEQuery = "fe.query"
	MFEPut   = "fe.put"
)

// LoadReq asks the membership server to load a corpus file (written by
// store.SaveFile) as the backend object set.
type LoadReq struct {
	Path string `json:"path"`
}

// LoadResp reports the loaded record count.
type LoadResp struct {
	Records int `json:"records"`
}

// PlainQuery is the plaintext index query shape (the non-encrypted
// workload served by internal/index): match documents containing the
// terms under the given combine mode, returning at most Limit of the
// numerically-smallest ids per arc. Mode values mirror index.Mode:
// 0 = AND, 1 = OR, 2 = at-least-MinMatch threshold.
type PlainQuery struct {
	Terms    []string `json:"terms"`
	Mode     uint8    `json:"mode,omitempty"`
	MinMatch int      `json:"min_match,omitempty"`
	Limit    int      `json:"limit,omitempty"`
}

// Cache-control values for FEQueryReq.CacheControl, mirrored by
// frontend.QuerySpec. Zero (default) must mean "cache normally" so a
// request without the field behaves like an old client's.
const (
	// CacheDefault: serve from the result cache when fresh, store on miss.
	CacheDefault uint8 = 0
	// CacheBypass: skip the cache entirely — no read, no store.
	CacheBypass uint8 = 1
	// CacheRefresh: skip the read but store the fresh result, forcing
	// revalidation of a suspect entry.
	CacheRefresh uint8 = 2
)

// FEQueryReq is a client query to a frontend. Priority selects the
// admission class: 0 is normal, negative is sheddable (rejected first
// when the frontend is overloaded), positive is never shed. Exactly one
// of Q / Plain is the payload: when Plain is non-nil the frontend
// routes the query to the nodes' plaintext index matcher instead of the
// PPS encrypted scan.
type FEQueryReq struct {
	Q        pps.Query   `json:"q"`
	Priority int         `json:"priority,omitempty"`
	Plain    *PlainQuery `json:"plain,omitempty"`

	// Tenant names the accounting principal for per-tenant admission
	// quotas and shed counters; empty means the anonymous default
	// tenant. CacheControl is one of the Cache* values above. On the
	// binary codec both ride a trailing extension block emitted only
	// when at least one is set, so an anonymous default-cache request is
	// byte-identical to the base encoding; a server that predates the
	// extension rejects the trailing bytes, which the client latches as
	// a downgrade signal (and re-probes every 16 requests — see
	// internal/feclient). On JSON they are ordinary omitempty fields old
	// servers ignore.
	Tenant       string `json:"tenant,omitempty"`
	CacheControl uint8  `json:"cache_control,omitempty"`
}

// HasExt reports whether any trailing-extension field is set; the
// binary encoder emits the extension block only then.
func (q FEQueryReq) HasExt() bool {
	return q.Tenant != "" || q.CacheControl != 0
}

// StripExt returns a copy with the extension fields zeroed — the form a
// pre-extension server's strict binary decoder accepts.
func (q FEQueryReq) StripExt() FEQueryReq {
	q.Tenant, q.CacheControl = "", 0
	return q
}

// FEQueryResp is the frontend's answer. It stays JSON-only on the wire:
// clients from before this PR have no binary decoder for it, and the
// response direction has no downgrade ladder — a server cannot learn
// what its caller can decode. The newer fields are omitempty, so old
// clients simply never see them.
type FEQueryResp struct {
	IDs        []uint64 `json:"ids,omitempty"`
	DelayNanos int64    `json:"delay_ns"`
	QueueNanos int64    `json:"queue_ns"` // admission-control wait
	SubQueries int      `json:"sub_queries"`
	Failures   int      `json:"failures"` // failed sub-queries recovered
	Hedges     int      `json:"hedges"`   // speculative re-dispatches launched
	// Source attributes the answer: "cache", "fanout", or "hedged".
	Source string `json:"source,omitempty"`
}

// QueryReq asks a node to match the encrypted query against its stored
// objects with ids in the half-open arc (Lo, Hi] — §4.2's partitioned
// sub-query carrying the duplicate-avoidance bounds.
type QueryReq struct {
	QID uint64    `json:"qid"` // query id, for logging/tracing
	Lo  float64   `json:"lo"`
	Hi  float64   `json:"hi"`
	Q   pps.Query `json:"q"`

	// Plain, when non-nil, selects the node's plaintext index matcher
	// instead of the PPS encrypted scan; Q is ignored. On the binary
	// codec it rides a trailing extension block emitted only when set,
	// so an encrypted-only request is byte-identical to the
	// pre-extension encoding and old nodes keep decoding it; an old
	// node receiving a plain query rejects the trailing bytes, which
	// surfaces as a normal sub-query failure on the frontend.
	Plain *PlainQuery `json:"plain,omitempty"`
}

// QueryResp carries the matching object ids.
type QueryResp struct {
	IDs     []uint64 `json:"ids,omitempty"`
	Scanned int      `json:"scanned"`
	// MatchNanos is pure matching time on the node, for the delay
	// breakdown of Fig 7.11.
	MatchNanos int64 `json:"match_ns"`
	// QueueDepth is the number of OTHER sub-queries already executing on
	// the node when this sub-query arrived (arrival sampling: under
	// synchronized closed-loop load, completion-time sampling always
	// lands in the trough between waves). Frontends fold it into their
	// finish-time estimates so a node backed up by competing frontends
	// is scheduled around before its own EWMA degrades.
	QueueDepth int `json:"queue_depth,omitempty"`
}

// PingReq is a liveness/recovery probe (MNodePing). It carries no
// fields; having a named type lets the probe ride the binary hot-path
// codec instead of a JSON null.
type PingReq struct{}

// PingResp answers a liveness/recovery probe (MNodePing) with the
// node's current load, so a recovering node rejoins the schedule with a
// realistic queue estimate instead of a blank slate.
type PingResp struct {
	QueueDepth int `json:"queue_depth"`
}

// PutReq pushes replica records to a node (the backend update server
// strategy of §4.1).
type PutReq struct {
	Records []pps.Encoded `json:"records"`

	// Epoch is the view epoch the sender placed these records under.
	// Zero means unfenced (a legacy or epoch-unaware sender) and is
	// always accepted. A non-zero epoch older than the newest one the
	// node has observed is rejected with wire.CodeStaleEpoch — the
	// sender's placement may be wrong, so it must re-pull the view and
	// re-route rather than write records the node no longer owns. On
	// the binary codec the epoch rides a trailing extension emitted
	// only when non-zero, so an unfenced request is byte-identical to
	// the pre-extension encoding and old nodes keep decoding it; an old
	// node receiving a fenced request rejects the trailing bytes, which
	// the sender latches as a legacy node and downgrades for.
	Epoch int `json:"epoch,omitempty"`
}

// PutResp acknowledges stored records.
type PutResp struct {
	Stored int `json:"stored"`
	Total  int `json:"total"` // node's record count after the put
}

// DeleteReq removes records by id.
type DeleteReq struct {
	IDs []uint64 `json:"ids"`
}

// IngestReq appends records to the coordinator's durable ingest WAL
// (MMemberIngest). Acceptance means durability, not delivery: the
// records are fsynced before the reply, then drained asynchronously to
// the owning nodes with at-least-once semantics (see docs/INGEST.md).
type IngestReq struct {
	Records []pps.Encoded `json:"records"`
}

// IngestResp acknowledges a durable append. Seq is the WAL sequence of
// the last accepted record; Drained is the delivery watermark at reply
// time (every sequence <= Drained has reached its owners), so a caller
// can poll for Drained >= Seq when it needs delivery, not just
// durability.
type IngestResp struct {
	Seq     uint64 `json:"seq"`
	Drained uint64 `json:"drained"`
}

// FEPutReq is a client write through a frontend (MFEPut): the frontend
// forwards it to the coordinator's ingest WAL.
type FEPutReq struct {
	Records []pps.Encoded `json:"records"`
}

// FEPutResp mirrors IngestResp for frontend clients.
type FEPutResp struct {
	Seq     uint64 `json:"seq"`
	Drained uint64 `json:"drained"`
}

// RetainReq tells a node its (possibly new) range and partitioning
// level; the node drops every record outside the implied stored set
// (§4.5: increasing p means dropping replicas immediately).
type RetainReq struct {
	Start  float64 `json:"start"`
	Length float64 `json:"length"`
	P      int     `json:"p"`
	// Epoch is the view epoch this placement comes from; the node
	// advances its observed epoch so older fenced puts start bouncing.
	// JSON-only body, so old nodes simply ignore the field.
	Epoch int `json:"epoch,omitempty"`
}

// RetainResp reports the deletions.
type RetainResp struct {
	Dropped   int `json:"dropped"`
	Remaining int `json:"remaining"`
}

// StatsResp is a node's counters (Fig 7.3 CPU load, Table 7.3 health).
type StatsResp struct {
	Objects    int     `json:"objects"`
	Queries    int64   `json:"queries"`
	Scanned    int64   `json:"scanned"`
	BusyNanos  int64   `json:"busy_ns"`
	UptimeSecs float64 `json:"uptime_s"`
	// PeakConcurrency is the high-water mark of simultaneously
	// executing sub-queries, evidence that frontend dispatch actually
	// overlaps work on the node.
	PeakConcurrency int64 `json:"peak_concurrency,omitempty"`
	// Canceled counts sub-queries aborted mid-match because the caller
	// cancelled (hedge losses, client disconnects).
	Canceled int64 `json:"canceled,omitempty"`
}

// NodeInfo describes one node's placement for frontend consumption.
type NodeInfo struct {
	ID    int     `json:"id"`
	Ring  int     `json:"ring"`
	Start float64 `json:"start"`
	Addr  string  `json:"addr"`
	// Quarantined demotes the node from scheduling without dropping it
	// from storage: it keeps its ring range and data (so recovery is a
	// view flip, not a data transfer), but frontends must not dispatch
	// sub-queries to it. Set by the membership health aggregator when a
	// node's failure-evidence score crosses the quarantine threshold.
	Quarantined bool `json:"quarantined,omitempty"`
}

// Tuning carries the frontend execution-pipeline knobs. The membership
// server distributes it inside the View so every frontend converges on
// the same connection-pool and admission configuration; zero-valued
// fields leave the frontend's local configuration in force.
type Tuning struct {
	// PoolSize is the per-node wire connection pool width.
	PoolSize int `json:"pool_size,omitempty"`
	// MaxInFlight caps concurrently executing queries per frontend.
	MaxInFlight int `json:"max_in_flight,omitempty"`
	// DispatchWorkers bounds concurrent sub-query RPCs per frontend.
	DispatchWorkers int `json:"dispatch_workers,omitempty"`
	// QueueTimeoutNanos bounds the admission-queue wait.
	QueueTimeoutNanos int64 `json:"queue_timeout_ns,omitempty"`
	// NodeMaxOutstanding caps in-flight sub-queries per node per
	// frontend (per-node backpressure: a slow node stalls only its own
	// dispatch stream, not the global worker pool).
	NodeMaxOutstanding int `json:"node_max_outstanding,omitempty"`
	// HedgeDelayNanos re-dispatches a still-unanswered sub-query onto
	// replica nodes after this delay (0 leaves the frontend's own
	// configuration in force).
	HedgeDelayNanos int64 `json:"hedge_delay_ns,omitempty"`
	// HedgeQuantile, in (0, 1), derives the hedge delay adaptively from
	// that quantile of recently observed sub-query latencies.
	HedgeQuantile float64 `json:"hedge_quantile,omitempty"`
	// ProbeIntervalNanos is the cadence of the background recovery
	// probe that re-evaluates suspected nodes.
	ProbeIntervalNanos int64 `json:"probe_interval_ns,omitempty"`
	// HedgeBudgetFraction caps hedged sub-query legs to this fraction
	// of dispatched primaries (token bucket; see frontend.Config).
	HedgeBudgetFraction float64 `json:"hedge_budget_fraction,omitempty"`
	// HedgeBudgetBurst is the hedge token-bucket capacity.
	HedgeBudgetBurst float64 `json:"hedge_budget_burst,omitempty"`
	// HedgeMaxPerQuery caps hedged legs launched for one query.
	HedgeMaxPerQuery int `json:"hedge_max_per_query,omitempty"`
	// ShedHighWater is the mean reported node queue depth at which a
	// frontend enters overload: hedging pauses and sheddable-priority
	// admissions are rejected.
	ShedHighWater int `json:"shed_high_water,omitempty"`
}

// View is the membership server's cluster snapshot: everything a
// frontend needs to schedule queries.
type View struct {
	Epoch  int        `json:"epoch"` // increases on every change
	P      int        `json:"p"`     // safe partitioning level (§4.5)
	Nodes  []NodeInfo `json:"nodes"`
	Tuning *Tuning    `json:"tuning,omitempty"` // frontend pipeline knobs

	// Term is the publishing leader's election term (control-plane HA).
	// Views are fenced by (Term, Epoch): a frontend rejects any view
	// strictly older than its installed one, so a deposed coordinator
	// can never roll the fleet back. Zero (a pre-HA or standalone
	// coordinator) sorts below every elected term, preserving
	// mixed-version interop — the view stays JSON on the wire, so old
	// peers simply ignore the field.
	Term uint64 `json:"term,omitempty"`

	// Ingested / Drained are the coordinator's ingest WAL watermarks at
	// view-build time (see docs/INGEST.md): Ingested is the last durable
	// append sequence, Drained the last sequence delivered to every
	// owning node. Frontends use them to invalidate their result caches
	// when asynchronous writes land without an epoch bump — a drain
	// advances data without changing placement. JSON-only fields; old
	// peers ignore them, and zero (an old or WAL-less coordinator) means
	// "no ingest signal", never "rewind".
	Ingested uint64 `json:"ingested,omitempty"`
	Drained  uint64 `json:"drained,omitempty"`
}

// JoinReq registers a node with the membership server.
type JoinReq struct {
	Addr      string  `json:"addr"`
	SpeedHint float64 `json:"speed_hint,omitempty"`
}

// JoinResp returns the assigned placement.
type JoinResp struct {
	ID    int     `json:"id"`
	Ring  int     `json:"ring"`
	Start float64 `json:"start"`
}

// LeaveReq removes a node gracefully.
type LeaveReq struct {
	ID int `json:"id"`
}

// SetPReq requests an on-the-fly partitioning change (§4.5).
type SetPReq struct {
	P int `json:"p"`
}

// ReportReq carries frontend statistics to the membership server
// (§4.9: node liveness and processing speed observations). It predates
// HealthReport; new coordinators fold Failed entries into the health
// aggregator as suspicion evidence, so old frontends keep interoperating.
type ReportReq struct {
	Speeds map[int]float64 `json:"speeds,omitempty"` // node id -> fraction/s
	Failed []int           `json:"failed,omitempty"`
}

// NodeHealth is one frontend's observations of one node since its last
// report. Counters are deltas, so the membership aggregator can sum
// them across frontends without double counting.
type NodeHealth struct {
	ID int `json:"id"`
	// Suspicions counts healthy/recovering -> suspected transitions
	// (sub-query timeouts or transport errors).
	Suspicions int `json:"suspicions,omitempty"`
	// ProbeOKs / ProbeFails count background recovery-probe outcomes.
	ProbeOKs   int `json:"probe_oks,omitempty"`
	ProbeFails int `json:"probe_fails,omitempty"`
	// Contacts counts successful sub-query completions.
	Contacts int `json:"contacts,omitempty"`
	// QueueDepth is the node's last self-reported queue depth.
	QueueDepth int `json:"queue_depth,omitempty"`
	// Speed is the frontend's EWMA speed estimate (fraction/s; 0 =
	// no observation yet).
	Speed float64 `json:"speed,omitempty"`

	// Latency digest (autoscale extension): p50/p99 of this frontend's
	// recent sub-query latencies against the node, from the same
	// per-node histories the adaptive hedge delay uses. Zero until the
	// tracker has warmed up. Rides the binary extension block of
	// HealthReport; old decoders never see it.
	LatP50Nanos int64 `json:"lat_p50_ns,omitempty"`
	LatP99Nanos int64 `json:"lat_p99_ns,omitempty"`
}

// HealthReport is the periodic per-frontend health push (MMemberHealth):
// everything the membership aggregator needs to fold this frontend's
// view of the cluster into per-node failure-evidence scores.
type HealthReport struct {
	// FE identifies the reporting frontend (its listen address, or any
	// stable name) so the aggregator can track report continuity.
	FE string `json:"fe,omitempty"`
	// Seq increases by one per report from this frontend.
	Seq uint64 `json:"seq"`
	// Shed counts PriorityLow queries this frontend rejected at
	// admission due to overload since its last report.
	Shed int `json:"shed,omitempty"`
	// Nodes carries the per-node observation deltas.
	Nodes []NodeHealth `json:"nodes,omitempty"`

	// --- autoscale telemetry extension ---
	//
	// The fields below (plus NodeHealth's latency digest) feed the
	// membership elasticity controller. On the binary codec they travel
	// in a trailing extension block that is emitted only when at least
	// one of them is non-zero, so a report with no extension data is
	// byte-identical to the pre-extension encoding; new decoders accept
	// both forms. On JSON they are ordinary omitempty fields. A frontend
	// talking to a pre-extension coordinator strips them (StripExt)
	// after the first "trailing bytes" decode rejection.

	// ShedNormal counts PriorityNormal queries rejected because the
	// admission queue wait exceeded its bound (ErrOverloaded) since the
	// last report — the second shed priority class, distinct from the
	// sheddable-low Shed counter.
	ShedNormal int `json:"shed_normal,omitempty"`
	// HedgesDenied counts hedges suppressed by budget exhaustion, the
	// per-query cap, or the overload brake since the last report —
	// sustained denial means the tail is being left unprotected for
	// lack of capacity.
	HedgesDenied int `json:"hedges_denied,omitempty"`
	// QueueP50Nanos / QueueP99Nanos digest the admission-queue wait of
	// recently admitted queries (gauges over a rolling window, not
	// deltas).
	QueueP50Nanos int64 `json:"queue_p50_ns,omitempty"`
	QueueP99Nanos int64 `json:"queue_p99_ns,omitempty"`

	// Tenants carries per-tenant admission/shed/cache deltas since the
	// last report, feeding the autoscale controller's fairness view. On
	// the binary codec it rides a SECOND trailing extension block after
	// the autoscale one (emitted only when non-empty, so reports without
	// tenant data keep their existing bytes); a coordinator that has the
	// autoscale block but predates tenants rejects the trailer, and the
	// sender strips just this block first before falling all the way
	// back (see frontend.Syncer).
	Tenants []TenantLoad `json:"tenants,omitempty"`
}

// TenantLoad is one frontend's per-tenant admission counters since its
// last report (deltas, like NodeHealth).
type TenantLoad struct {
	Tenant string `json:"tenant"`
	// Admitted counts queries that passed admission (quota + semaphore).
	Admitted int `json:"admitted,omitempty"`
	// Shed counts queries rejected by quota exhaustion or overload.
	Shed int `json:"shed,omitempty"`
	// CacheHits / CacheMisses split the tenant's cache traffic; hits
	// bypass admission entirely, so Admitted+Shed+CacheHits is the
	// tenant's offered load.
	CacheHits   int `json:"cache_hits,omitempty"`
	CacheMisses int `json:"cache_misses,omitempty"`
}

// HasExt reports whether any autoscale-extension field (including the
// per-node latency digests) is set; the binary encoder emits the
// trailing extension block only then.
func (h HealthReport) HasExt() bool {
	if h.ShedNormal != 0 || h.HedgesDenied != 0 || h.QueueP50Nanos != 0 || h.QueueP99Nanos != 0 {
		return true
	}
	for _, nh := range h.Nodes {
		if nh.LatP50Nanos != 0 || nh.LatP99Nanos != 0 {
			return true
		}
	}
	return false
}

// HasTenantExt reports whether the tenant telemetry block is present;
// the binary encoder emits it (and therefore also the autoscale block
// it trails) only then.
func (h HealthReport) HasTenantExt() bool { return len(h.Tenants) > 0 }

// StripTenants returns a copy without the tenant block — the form a
// coordinator that has the autoscale extension but predates tenants
// accepts. The first rung of the health downgrade ladder.
func (h HealthReport) StripTenants() HealthReport {
	h.Tenants = nil
	return h
}

// StripExt returns a copy with every extension field zeroed (tenants
// included) — the form a pre-extension coordinator's strict binary
// decoder accepts. The base evidence (suspicions, probes, contacts,
// depths, speeds) is preserved.
func (h HealthReport) StripExt() HealthReport {
	h.ShedNormal, h.HedgesDenied, h.QueueP50Nanos, h.QueueP99Nanos = 0, 0, 0, 0
	h.Tenants = nil
	if h.HasExt() { // some node carries a digest: copy before clearing
		nodes := make([]NodeHealth, len(h.Nodes))
		copy(nodes, h.Nodes)
		for i := range nodes {
			nodes[i].LatP50Nanos, nodes[i].LatP99Nanos = 0, 0
		}
		h.Nodes = nodes
	}
	return h
}

// HealthResp acknowledges a health report with the aggregator's current
// verdict, closing the loop: a frontend seeing an Epoch ahead of its
// installed view should re-pull the view immediately instead of waiting
// for its poll timer.
type HealthResp struct {
	Epoch int `json:"epoch"`
	// Quarantined lists the node ids currently demoted from scheduling.
	Quarantined []int `json:"quarantined,omitempty"`
}
