// Package coordclient is the failover client for the replicated
// control plane: frontends and nodes hold one Client over the full
// coordinator peer list instead of a single wire.Client to a single
// coordinator. Calls stick to the last replica that answered (the
// leader, in steady state); on failure the client follows the
// "leader=<addr>" redirect hint that NotLeaderError carries across the
// wire, else rotates through the peers, with jittered exponential
// backoff between full passes so a leaderless interval (an election in
// progress) does not turn into a synchronized retry storm.
package coordclient

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"

	"roar/internal/wire"
)

// Config tunes a failover client. Zero values take the documented
// defaults.
type Config struct {
	// BaseBackoff is the wait after the first failed pass over every
	// peer; it doubles each pass up to MaxBackoff, each wait jittered
	// uniformly over [½·backoff, backoff). Defaults 50ms / 2s.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Passes bounds how many full rotations over the peer list one Call
	// attempts before giving up (the context can end a Call sooner).
	// Default 4.
	Passes int
	// After injects the backoff timer (tests). Nil means real time.
	After func(time.Duration) <-chan time.Time
}

func (c Config) withDefaults() Config {
	if c.BaseBackoff <= 0 {
		c.BaseBackoff = 50 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 2 * time.Second
	}
	if c.Passes <= 0 {
		c.Passes = 4
	}
	if c.After == nil {
		c.After = time.After //lint:allow wallclock — clock-injection default
	}
	return c
}

// Client is a coordinator client that fails over across replicas.
// Safe for concurrent use.
type Client struct {
	cfg   Config
	peers []string
	conns []*wire.Client

	mu  sync.Mutex
	cur int // index of the last peer that answered
}

// New builds a failover client over the replica peer list (order is
// the initial preference order).
func New(peers []string, cfg Config) (*Client, error) {
	if len(peers) == 0 {
		return nil, fmt.Errorf("coordclient: empty peer list")
	}
	c := &Client{cfg: cfg.withDefaults(), peers: append([]string(nil), peers...)}
	for _, p := range c.peers {
		c.conns = append(c.conns, wire.NewClient(p))
	}
	return c, nil
}

// Peers returns the configured peer addresses.
func (c *Client) Peers() []string { return append([]string(nil), c.peers...) }

// Current returns the address of the peer the client is currently
// stuck to.
func (c *Client) Current() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.peers[c.cur]
}

// Close releases every underlying connection.
func (c *Client) Close() {
	for _, cl := range c.conns {
		cl.Close()
	}
}

// leaderHint extracts the redirect address from a NotLeaderError that
// crossed the wire as text ("... not leader; leader=<addr>").
func leaderHint(err error) string {
	if err == nil {
		return ""
	}
	s := err.Error()
	i := strings.LastIndex(s, "leader=")
	if i < 0 {
		return ""
	}
	addr := s[i+len("leader="):]
	if j := strings.IndexAny(addr, " \t\n"); j >= 0 {
		addr = addr[:j]
	}
	return addr
}

// indexOf maps a peer address to its slot, -1 when unknown.
func (c *Client) indexOf(addr string) int {
	for i, p := range c.peers {
		if p == addr {
			return i
		}
	}
	return -1
}

// Call invokes method against the current leader, failing over on any
// error: redirect hints jump straight to the named replica, other
// failures rotate to the next peer, and exhausting the whole list
// backs off (jittered, exponential) before the next pass.
func (c *Client) Call(ctx context.Context, method string, in, out interface{}) error {
	c.mu.Lock()
	idx := c.cur
	c.mu.Unlock()
	backoff := c.cfg.BaseBackoff
	var lastErr error
	for pass := 0; pass < c.cfg.Passes; pass++ {
		for n := 0; n < len(c.conns); n++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			err := c.conns[idx].Call(ctx, method, in, out)
			if err == nil {
				c.mu.Lock()
				c.cur = idx
				c.mu.Unlock()
				return nil
			}
			lastErr = err
			if hint := leaderHint(err); hint != "" {
				if j := c.indexOf(hint); j >= 0 && j != idx {
					idx = j
					continue
				}
			}
			idx = (idx + 1) % len(c.conns)
		}
		if pass == c.cfg.Passes-1 {
			break
		}
		wait := backoff/2 + time.Duration(rand.Int63n(int64(backoff/2)+1))
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-c.cfg.After(wait):
		}
		if backoff *= 2; backoff > c.cfg.MaxBackoff {
			backoff = c.cfg.MaxBackoff
		}
	}
	if lastErr == nil {
		lastErr = errors.New("coordclient: no peers")
	}
	return fmt.Errorf("coordclient: %s failed across %d peers: %w", method, len(c.conns), lastErr)
}
