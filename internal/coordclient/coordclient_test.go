package coordclient

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"roar/internal/wire"
)

// startMember serves a fake coordinator replica whose handler is fn.
func startMember(t *testing.T, fn func(method string) (interface{}, error)) string {
	t.Helper()
	srv, err := wire.Serve("127.0.0.1:0", func(_ context.Context, method string, _ wire.Body) (interface{}, error) {
		return fn(method)
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv.Addr()
}

type pong struct {
	From string `json:"from"`
}

func TestLeaderHintParsing(t *testing.T) {
	for _, tc := range []struct {
		err  error
		want string
	}{
		{nil, ""},
		{errors.New("membership: not leader"), ""},
		{errors.New("membership: not leader; leader=10.0.0.7:7001"), "10.0.0.7:7001"},
		{errors.New("wire: member.view: membership: not leader; leader=127.0.0.1:9"), "127.0.0.1:9"},
	} {
		if got := leaderHint(tc.err); got != tc.want {
			t.Errorf("leaderHint(%v) = %q, want %q", tc.err, got, tc.want)
		}
	}
}

func TestCallFollowsRedirectAndSticks(t *testing.T) {
	var leaderAddr string
	leader := startMember(t, func(string) (interface{}, error) {
		return pong{From: "leader"}, nil
	})
	leaderAddr = leader
	follower := startMember(t, func(string) (interface{}, error) {
		return nil, fmt.Errorf("membership: not leader; leader=%s", leaderAddr)
	})

	// Peer order puts the follower first: the first call must follow the
	// redirect hint straight to the leader, not rotate blindly.
	cl, err := New([]string{follower, leader}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	var out pong
	if err := cl.Call(context.Background(), "member.view", nil, &out); err != nil {
		t.Fatal(err)
	}
	if out.From != "leader" {
		t.Fatalf("answered by %q", out.From)
	}
	if cl.Current() != leader {
		t.Errorf("client should stick to the leader, stuck to %s", cl.Current())
	}
	// Subsequent calls go to the leader directly.
	if err := cl.Call(context.Background(), "member.view", nil, &out); err != nil {
		t.Fatal(err)
	}
	if cl.Current() != leader {
		t.Errorf("stickiness lost: %s", cl.Current())
	}
}

func TestCallRotatesPastDeadPeer(t *testing.T) {
	live := startMember(t, func(string) (interface{}, error) {
		return pong{From: "live"}, nil
	})
	// A peer that is down entirely: reserve an address and close it.
	dead := startMember(t, func(string) (interface{}, error) { return nil, errors.New("unreachable") })
	cl, err := New([]string{dead, live}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	var out pong
	if err := cl.Call(context.Background(), "member.view", nil, &out); err != nil {
		t.Fatal(err)
	}
	if out.From != "live" {
		t.Fatalf("answered by %q", out.From)
	}
}

func TestCallBacksOffBetweenPasses(t *testing.T) {
	calls := 0
	flaky := startMember(t, func(string) (interface{}, error) {
		calls++
		if calls < 2 {
			return nil, errors.New("election in progress")
		}
		return pong{From: "flaky"}, nil
	})
	var waits []time.Duration
	cl, err := New([]string{flaky}, Config{
		BaseBackoff: 80 * time.Millisecond,
		After: func(d time.Duration) <-chan time.Time {
			waits = append(waits, d)
			ch := make(chan time.Time, 1)
			ch <- time.Time{}
			return ch
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	var out pong
	if err := cl.Call(context.Background(), "member.view", nil, &out); err != nil {
		t.Fatal(err)
	}
	if len(waits) != 1 {
		t.Fatalf("expected one backoff between passes, saw %v", waits)
	}
	// Jittered over [½·base, base).
	if waits[0] < 40*time.Millisecond || waits[0] > 80*time.Millisecond {
		t.Errorf("backoff %v outside the jitter window [40ms, 80ms]", waits[0])
	}
}

func TestCallExhaustsPasses(t *testing.T) {
	down := startMember(t, func(string) (interface{}, error) { return nil, errors.New("nope") })
	cl, err := New([]string{down}, Config{
		Passes: 2,
		After: func(time.Duration) <-chan time.Time {
			ch := make(chan time.Time, 1)
			ch <- time.Time{}
			return ch
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	err = cl.Call(context.Background(), "member.view", nil, &pong{})
	if err == nil {
		t.Fatal("exhausted call should error")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := cl.Call(ctx, "member.view", nil, &pong{}); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled context should surface, got %v", err)
	}
}
